// Package sweep evaluates one scheduling session across many platform /
// scheduler / seed combinations in parallel — the experimental shape of the
// paper's entire evaluation section (schedule one DAG over a grid of memory
// fractions and heuristics) promoted to a first-class engine.
//
// A Spec describes the sweep declaratively: either a cartesian grid
// (Platforms or Alphas × Schedulers × Seeds) or an explicit Points list.
// Run and Stream execute it on a bounded worker pool; every worker owns a
// warm copy-on-write fork of the Session (see memsched.Session.Fork), so
// the hot path shares no cache mutexes or recycled buffers between workers
// and throughput scales with cores. Results are delivered ordered by point
// index regardless of completion order, and are bit-identical for every
// worker count — each point is a pure function of (graph, platform,
// scheduler, seed).
//
// Grid sweeps additionally warm-start across their own points (see
// Spec.Replay): the points of each replayable (scheduler, seed) pair are
// chained along descending platform capacities and each point replays the
// verified committed-placement prefix of its predecessor, re-deriving only
// the suffix the tighter capacities actually change — which makes dense
// capacity sweeps sub-linear in the number of grid points without changing
// a single result.
//
// Infeasibility is data, not failure: points that end in ErrMemoryBound or
// ErrSimStuck are reported with Feasible == false and the sweep continues —
// the per-scheduler feasibility frontier is part of the Summary. Any other
// error (including context cancellation) stops the sweep; the results
// already emitted form a contiguous, ordered prefix.
package sweep

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	memsched "repro"
)

// Replay policies of Spec.Replay.
const (
	// ReplayAuto chains same-(scheduler, seed) grid points by descending
	// capacity and warm-starts each from its predecessor's trace. The
	// default.
	ReplayAuto = "auto"
	// ReplayOff schedules every point from scratch.
	ReplayOff = "off"
)

// Schedulers beyond the heuristic registry that the engine accepts: the
// branch-and-bound search and the two online dispatcher policies.
const (
	// SchedulerOptimal runs Session.Optimal (dual sessions, 2-pool
	// platforms) with the Spec's node/time budgets.
	SchedulerOptimal = "optimal"
	// SchedulerSimRank runs Session.Simulate with the rank dispatch order.
	SchedulerSimRank = "sim-rank"
	// SchedulerSimEFT runs Session.Simulate with the EFT dispatch order.
	SchedulerSimEFT = "sim-eft"
)

// Spec declares a sweep. Exactly one source of points must be present: the
// Platforms axis, the Alphas axis (with Base), or the explicit Points list.
// Schedulers and Seeds default to {"memheft"} and {0}.
type Spec struct {
	// Platforms is the explicit platform axis of a grid sweep.
	Platforms []memsched.Platform

	// Xs optionally labels the Platforms axis (curve x values, e.g. the
	// memory bound each platform encodes). Must match len(Platforms);
	// defaults to the platform index.
	Xs []float64

	// Alphas declares a memory-fraction sweep instead of Platforms: for
	// every alpha, the platform is Base with each pool capacity set to
	// alpha*Peak — the paper's normalised-memory experiments.
	Alphas []float64
	// Base is the platform template of an alpha sweep (its capacities are
	// ignored).
	Base memsched.Platform
	// Peak is the 100% memory reference of an alpha sweep. Zero means
	// "measure it": the engine runs memory-oblivious HEFT on Base once and
	// uses its largest pool peak, exactly like the paper normalises by
	// "the amount of memory required by HEFT". The measured (or given)
	// peak and the HEFT reference makespan are reported in the Summary.
	Peak int64

	// Schedulers is the scheduler axis: any registry name
	// (memsched.Schedulers) plus SchedulerOptimal / SchedulerSimRank /
	// SchedulerSimEFT. Default {"memheft"}.
	Schedulers []string
	// Seeds is the tie-breaking seed axis. Default {0}.
	Seeds []int64

	// Points is an explicit point list, mutually exclusive with the grid
	// axes. The Summary of an explicit sweep carries no curves or
	// frontier (the points need not form a grid).
	Points []Point

	// Replay selects the warm-start policy of grid sweeps: ReplayAuto (the
	// default, also "") chains the points of each replayable (scheduler,
	// seed) pair along descending platform capacities and runs every chain
	// with memsched.WithWarmStart, so each point replays the verified
	// placement prefix of its predecessor and re-derives only the suffix
	// the tighter capacities change; ReplayOff schedules every point from
	// scratch. Results are bit-identical either way (replay is verified
	// step by step and the engine falls back to normal scheduling at the
	// first divergence) — only the per-point ReplayedPlacements counters
	// and the wall time differ. Explicit Points sweeps never chain.
	Replay string

	// Workers bounds the worker pool; 0 means GOMAXPROCS. The pool is
	// additionally capped by the point count (chains keep at least one
	// runnable chain per worker, so replay never costs parallelism).
	Workers int

	// KeepResults retains the full *memsched.Result (schedule included)
	// on every PointResult. Off by default: a 64-point sweep of a large
	// DAG would otherwise pin 64 schedules.
	KeepResults bool

	// OptNodes / OptTimeout budget SchedulerOptimal points (0 = the
	// search's defaults / no time budget).
	OptNodes   int
	OptTimeout time.Duration
}

// Point is one sweep evaluation: a platform, a scheduler, a seed. Grid
// compilation fills Axis/X/Alpha so results can be folded into curves;
// explicit points may leave them zero.
type Point struct {
	Platform  memsched.Platform
	Scheduler string
	Seed      int64

	// Axis is the index on the platform/alpha axis this point belongs to,
	// X its curve coordinate (alpha, a caller-provided Xs value, or the
	// axis index), and Alpha the memory fraction that produced Platform
	// (0 for absolute platforms).
	Axis  int
	X     float64
	Alpha float64

	// Incumbent seeds a SchedulerOptimal point's branch-and-bound search
	// with a known-valid schedule (see memsched.WithIncumbent); ignored
	// by every other scheduler. Only expressible on explicit Points —
	// grid points have no natural incumbent.
	Incumbent *memsched.Schedule
}

// PointResult is the outcome of one point. Feasible is false when the
// scheduler could not fit the graph (Reason says why); the sweep continues
// past infeasible points.
type PointResult struct {
	Index    int
	Point    Point
	Feasible bool
	// Reason classifies an infeasible point: "memory_bound", "sim_stuck",
	// or "infeasible" (Optimal proved no list schedule exists or found
	// none in budget). Empty when Feasible.
	Reason   string
	Makespan float64 // 0 when infeasible
	Peaks    []int64 // per-pool peak residency; nil when infeasible
	Stats    memsched.Stats
	// ReplayedPlacements / ReplayTruncated surface the warm-start replay
	// counters of this point (mirrors of Stats.ReplayedPlacements /
	// Stats.ReplayTruncated): how many placements were committed by
	// verified trace replay, and whether the replay stopped early because
	// a recorded decision no longer held under the point's capacities.
	// Always zero under ReplayOff and on chain-opening points.
	ReplayedPlacements int
	ReplayTruncated    bool
	// Result is the full scheduling result, retained only when
	// Spec.KeepResults is set.
	Result *memsched.Result
}

// Result is a fully collected sweep: every point result in point order,
// plus the computed summary. A cancelled or failed sweep returns the
// completed ordered prefix with a nil Summary alongside the error.
type Result struct {
	Points  []PointResult
	Summary *Summary
}

// Summary aggregates a completed sweep.
type Summary struct {
	// Points and Feasible count the executed and the schedulable points.
	Points, Feasible int
	// BestIndex is the point index of the smallest feasible makespan
	// (lowest index on ties), -1 when nothing was feasible.
	BestIndex    int
	BestMakespan float64
	// RefMakespan and Peak report the HEFT reference of an alpha sweep
	// (zero when Spec.Peak was given or the sweep was absolute).
	RefMakespan float64
	Peak        int64
	// Curves holds one makespan curve per scheduler over the platform
	// axis (grid sweeps only; seeds are averaged over feasible runs, NaN
	// marks axis points where no seed was feasible).
	Curves []Curve
	// Frontier holds each scheduler's memory-bound frontier (grid sweeps
	// only): the first axis point, in axis order, at which every seed
	// produced a schedule. Axis == -1 when the scheduler never fully
	// succeeded.
	Frontier []Frontier
	// Workers is the worker count that ran; WallTime the end-to-end
	// duration of the sweep.
	Workers  int
	WallTime time.Duration
}

// Curve is one scheduler's makespan profile over the platform axis.
type Curve struct {
	Scheduler string
	X         []float64 // alpha / Xs value / axis index, in axis order
	Makespan  []float64 // mean over feasible seeds; NaN = none feasible
}

// Frontier is one scheduler's feasibility frontier on the platform axis.
type Frontier struct {
	Scheduler string
	Axis      int     // first axis index with every seed feasible; -1 = never
	X         float64 // the axis coordinate of Axis (0 when Axis == -1)
}

// KnownScheduler reports whether name is acceptable in Spec.Schedulers: a
// registered heuristic or one of the engine extensions (optimal, sim-rank,
// sim-eft). Matching is case-insensitive like the registry's.
func KnownScheduler(name string) bool {
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case SchedulerOptimal, SchedulerSimRank, SchedulerSimEFT:
		return true
	}
	for _, n := range memsched.Schedulers() {
		if n == name {
			return true
		}
	}
	return false
}

// SchedulerNames returns every name KnownScheduler accepts: the registry
// plus the engine extensions, sorted.
func SchedulerNames() []string {
	names := append([]string(nil), memsched.Schedulers()...)
	names = append(names, SchedulerOptimal, SchedulerSimEFT, SchedulerSimRank)
	sort.Strings(names)
	return names
}

// compiled is a validated, fully expanded spec.
type compiled struct {
	points     []Point
	grid       bool // curves/frontier apply
	schedulers []string
	seeds      []int64
	axes       []float64 // X per axis index (grid only)
	refMS      float64
	peak       int64
}

// normalize lower-cases and de-spaces a scheduler name like the registry.
func normalize(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// validateAxes checks the point-source arity of spec before compilation.
func validateAxes(spec *Spec) error {
	sources := 0
	if len(spec.Platforms) > 0 {
		sources++
	}
	if len(spec.Alphas) > 0 {
		sources++
	}
	if len(spec.Points) > 0 {
		sources++
	}
	if sources == 0 {
		return errors.New("sweep: spec declares no points (set Platforms, Alphas or Points)")
	}
	if sources > 1 {
		return errors.New("sweep: set exactly one of Platforms, Alphas and Points")
	}
	if len(spec.Xs) > 0 && len(spec.Xs) != len(spec.Platforms) {
		return fmt.Errorf("sweep: %d Xs labels for %d platforms", len(spec.Xs), len(spec.Platforms))
	}
	if len(spec.Alphas) > 0 {
		if spec.Base.NumPools() == 0 {
			return errors.New("sweep: an alpha sweep needs a Base platform")
		}
		for _, a := range spec.Alphas {
			if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
				return fmt.Errorf("sweep: alpha %g is not a positive fraction", a)
			}
		}
	}
	if spec.Peak < 0 {
		return fmt.Errorf("sweep: negative peak %d", spec.Peak)
	}
	if spec.Workers < 0 {
		return fmt.Errorf("sweep: negative worker count %d", spec.Workers)
	}
	switch normalize(spec.Replay) {
	case "", ReplayAuto, ReplayOff:
	default:
		return fmt.Errorf("sweep: unknown replay policy %q (use %q or %q)", spec.Replay, ReplayAuto, ReplayOff)
	}
	return nil
}

// NumPoints returns the number of points spec expands to, before any
// platform validation (convenient for admission control in servers).
func (spec Spec) NumPoints() int {
	if len(spec.Points) > 0 {
		return len(spec.Points)
	}
	axis := len(spec.Platforms)
	if len(spec.Alphas) > 0 {
		axis = len(spec.Alphas)
	}
	scheds, seeds := len(spec.Schedulers), len(spec.Seeds)
	if scheds == 0 {
		scheds = 1
	}
	if seeds == 0 {
		seeds = 1
	}
	return axis * scheds * seeds
}
