// Command daggen generates task graphs in the JSON format understood by
// cmd/memsched: DAGGEN-style random DAGs (the paper's SmallRandSet /
// LargeRandSet shapes) or tiled LU / Cholesky factorisation graphs.
//
// Usage:
//
//	daggen -kind random -size 30 -width 0.3 -density 0.5 -jumps 5 -seed 1 > dag.json
//	daggen -kind lu -tiles 13 > lu13.json
//	daggen -kind cholesky -tiles 13 -dot chol.dot > chol13.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/linalg"
)

func main() {
	var (
		kind    = flag.String("kind", "random", "graph kind: random, lu or cholesky")
		size    = flag.Int("size", 30, "random: number of tasks")
		width   = flag.Float64("width", 0.3, "random: width parameter in (0,1]")
		reg     = flag.Float64("regularity", 0.5, "random: level-size regularity in [0,1]")
		density = flag.Float64("density", 0.5, "random: edge density in [0,1]")
		jumps   = flag.Int("jumps", 5, "random: maximum level jump of extra edges")
		large   = flag.Bool("large", false, "random: use the LargeRandSet value ranges ([1,100] everywhere)")
		tiles   = flag.Int("tiles", 13, "lu/cholesky: tiled matrix dimension")
		seed    = flag.Int64("seed", 1, "random seed")
		dotPath = flag.String("dot", "", "also write Graphviz output to this path")
		stats   = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()
	if err := run(*kind, *size, *width, *reg, *density, *jumps, *large, *tiles, *seed, *dotPath, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
}

func run(kind string, size int, width, reg, density float64, jumps int, large bool, tiles int, seed int64, dotPath string, stats bool) error {
	var g *dag.Graph
	var err error
	switch kind {
	case "random":
		params := daggen.SmallParams()
		if large {
			params = daggen.LargeParams()
		}
		params.Size = size
		params.Width = width
		params.Regularity = reg
		params.Density = density
		params.Jumps = jumps
		g, err = daggen.Generate(params, seed)
	case "lu":
		g, err = linalg.LU(linalg.DefaultConfig(tiles))
	case "cholesky":
		g, err = linalg.Cholesky(linalg.DefaultConfig(tiles))
	default:
		err = fmt.Errorf("unknown kind %q (want random, lu or cholesky)", kind)
	}
	if err != nil {
		return err
	}
	if stats {
		st, err := g.ComputeStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tasks=%d edges=%d fictitious=%d levels=%d maxWidth=%d cp=%g maxMemReq=%d\n",
			st.Tasks, st.Edges, st.Fictitious, st.Levels, st.MaxWidth, st.CPLength, st.MaxMemReq)
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(g.DOT(kind)), 0o644); err != nil {
			return err
		}
	}
	return g.Write(os.Stdout)
}
