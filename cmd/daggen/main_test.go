package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	errRun := fn()
	w.Close()
	os.Stdout = old
	return <-done, errRun
}

func TestRunRandom(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run("random", 12, 0.3, 0.5, 0.5, 3, false, 0, 1, "", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"tasks"`) {
		t.Fatalf("no JSON tasks in output: %q", out)
	}
}

func TestRunLUAndCholesky(t *testing.T) {
	for _, kind := range []string{"lu", "cholesky"} {
		if _, err := captureStdout(t, func() error {
			return run(kind, 0, 0, 0, 0, 0, false, 4, 1, "", false)
		}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestRunLargeRanges(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run("random", 20, 0.3, 0.5, 0.5, 5, true, 0, 2, "", true)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesDot(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "g.dot")
	if _, err := captureStdout(t, func() error {
		return run("lu", 0, 0, 0, 0, 0, false, 3, 1, dot, false)
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil || !strings.Contains(string(data), "digraph") {
		t.Fatalf("dot output bad: %v", err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run("nope", 10, 0.3, 0.5, 0.5, 3, false, 0, 1, "", false)
	}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := captureStdout(t, func() error {
		return run("random", -4, 0.3, 0.5, 0.5, 3, false, 0, 1, "", false)
	}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := captureStdout(t, func() error {
		return run("lu", 0, 0, 0, 0, 0, false, 0, 1, "", false)
	}); err == nil {
		t.Fatal("zero tiles accepted")
	}
}
