// Command benchjson runs the scheduler throughput benchmarks in-process via
// testing.Benchmark and emits a machine-readable JSON report, so the
// performance trajectory of the hot path can be tracked across PRs (the
// repo convention is one BENCH_<pr>.json per perf PR at the repository
// root). The cases mirror the scheduler-throughput benchmarks of
// bench_test.go — the dual-memory suite runs through the public Session API
// so the numbers include the session indirection real callers pay, and the
// k-pool suite (n = 300/1000/3000 at k = 3/4/8, plus the retained eager
// oracle at n = 1000, k = 4) tracks the generalised engine against its
// reference.
//
// Usage:
//
//	go run ./cmd/benchjson -o BENCH_<pr>.json
//
// The default output is BENCH.json; pass -o to follow the per-PR naming
// convention. -repeat N runs every case N times and records the fastest
// run, which suppresses one-sided scheduler/GC noise on shared runners.
//
// Regression gate. With -compare OLD.json the command exits nonzero when
// any benchmark tracked by both reports got slower than the threshold
// ratio:
//
//	go run ./cmd/benchjson -o fresh.json -compare BENCH_3.json -threshold 1.25
//
// CI runs exactly that against the committed baseline (with a generous
// threshold to absorb runner noise) and uploads the fresh JSON as an
// artifact. Pass -in FRESH.json to gate an existing report instead of
// running the suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Report is the emitted JSON document.
type Report struct {
	Suite      string            `json:"suite"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is the recorded outcome of one case.
type Result struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Iterations  int   `json:"iterations"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output file")
	in := flag.String("in", "", "gate an existing report instead of running the suite")
	repeat := flag.Int("repeat", 1, "runs per case; the fastest is recorded")
	compare := flag.String("compare", "", "baseline report to gate against")
	threshold := flag.Float64("threshold", 1.25, "maximum allowed ns/op ratio vs the baseline")
	flag.Parse()

	if *in != "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -in only gates an existing report and requires -compare")
		os.Exit(2)
	}

	var (
		rep *Report
		err error
	)
	if *in != "" {
		rep, err = readReport(*in)
	} else {
		rep, err = runSuite(defaultCases(), *repeat)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *in == "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		regressions, notes := compareReports(base, rep, *threshold)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, n)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.2fx vs %s\n",
				len(regressions), *threshold, *compare)
			os.Exit(1)
		}
		fmt.Printf("benchmark gate passed: no regression past %.2fx vs %s\n", *threshold, *compare)
	}
}

// readReport loads and sanity-checks a report file.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: %s carries no benchmarks", path)
	}
	return &rep, nil
}

// compareReports gates fresh against base: every benchmark present in both
// reports must not exceed threshold times the baseline ns/op. Benchmarks
// that exist on only one side are reported as notes, never as failures —
// the tracked suite is allowed to grow and shrink across PRs. Output is
// sorted by benchmark name so gate logs are stable across runs.
func compareReports(base, fresh *Report, threshold float64) (regressions, notes []string) {
	for _, name := range sortedNames(base.Benchmarks) {
		old := base.Benchmarks[name]
		cur, ok := fresh.Benchmarks[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("note: %s in baseline but not in fresh report", name))
			continue
		}
		if old.NsPerOp <= 0 {
			notes = append(notes, fmt.Sprintf("note: %s has non-positive baseline ns/op %d", name, old.NsPerOp))
			continue
		}
		ratio := float64(cur.NsPerOp) / float64(old.NsPerOp)
		if ratio > threshold {
			regressions = append(regressions, fmt.Sprintf("%s: %d -> %d ns/op (%.2fx > %.2fx)",
				name, old.NsPerOp, cur.NsPerOp, ratio, threshold))
		}
	}
	for _, name := range sortedNames(fresh.Benchmarks) {
		if _, ok := base.Benchmarks[name]; !ok {
			notes = append(notes, fmt.Sprintf("note: %s is new (no baseline)", name))
		}
	}
	return regressions, notes
}

// sortedNames returns the benchmark names in sorted order.
func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
