// Command benchjson runs the scheduler throughput benchmarks in-process via
// testing.Benchmark and emits a machine-readable JSON report, so the
// performance trajectory of the hot path can be tracked across PRs (the
// repo convention is one BENCH_<pr>.json per perf PR at the repository
// root). The cases mirror the BenchmarkMemHEFT300 / BenchmarkMemMinMin300 /
// BenchmarkHEFT1000 benchmarks of bench_test.go plus the large-DAG variants
// (n = 3000 and n = 10000), and run through the public Session API so the
// numbers include the session indirection real callers pay.
//
// Usage:
//
//	go run ./cmd/benchjson -o BENCH_<pr>.json
//
// The default output is BENCH.json; pass -o to follow the per-PR naming
// convention.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	memsched "repro"
	"repro/internal/daggen"
	"repro/internal/experiments"
	"repro/internal/multi"
)

// Case is one named benchmark configuration.
type Case struct {
	Name      string
	Scheduler string // registry name passed to WithScheduler
	Size      int
	Alpha     float64
}

// Result is the recorded outcome of one case.
type Result struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Iterations  int   `json:"iterations"`
}

// Report is the emitted JSON document.
type Report struct {
	Suite      string            `json:"suite"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// defaultCases is the tracked suite.
func defaultCases() []Case {
	return []Case{
		{Name: "MemHEFT300", Scheduler: "memheft", Size: 300, Alpha: 0.5},
		{Name: "MemMinMin300", Scheduler: "memminmin", Size: 300, Alpha: 0.5},
		{Name: "HEFT1000", Scheduler: "heft", Size: 1000, Alpha: 1},
		{Name: "MemHEFT3000", Scheduler: "memheft", Size: 3000, Alpha: 0.7},
		{Name: "MemHEFT10000", Scheduler: "memheft", Size: 10000, Alpha: 0.9},
	}
}

// run executes one case exactly like bench_test.go's benchScheduler: a
// daggen graph, the random-set platform, and memory bounds at alpha times
// the HEFT peak. The session is created once (as a server would) and the
// loop measures Session.Schedule. testing.Benchmark self-calibrates the
// iteration count.
func run(c Case) (Result, error) {
	ctx := context.Background()
	params := daggen.LargeParams()
	params.Size = c.Size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		return Result{}, err
	}
	p := experiments.RandomPlatform()
	_, peak, err := experiments.HEFTReference(ctx, g, p, 7)
	if err != nil {
		return Result{}, err
	}
	bound := int64(c.Alpha * float64(peak))
	pp := multi.FromDualPlatform(p.WithBounds(bound, bound))
	sess, err := memsched.NewSession(g)
	if err != nil {
		return Result{}, err
	}
	var schedErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Schedule(ctx, pp, memsched.WithScheduler(c.Scheduler), memsched.WithSeed(7)); err != nil {
				schedErr = err
				b.FailNow()
			}
		}
	})
	if schedErr != nil {
		return Result{}, schedErr
	}
	return Result{
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Iterations:  br.N,
	}, nil
}

// runSuite runs every case and assembles the report.
func runSuite(cases []Case) (*Report, error) {
	rep := &Report{Suite: "scheduler-throughput", Benchmarks: make(map[string]Result, len(cases))}
	for _, c := range cases {
		r, err := run(c)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", c.Name, err)
		}
		rep.Benchmarks[c.Name] = r
		fmt.Fprintf(os.Stderr, "%-14s %12d ns/op %8d B/op %6d allocs/op (%d iters)\n",
			c.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Iterations)
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "BENCH.json", "output file")
	flag.Parse()
	rep, err := runSuite(defaultCases())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
