package main

import (
	"context"
	"fmt"
	"os"
	"testing"

	memsched "repro"
	"repro/internal/daggen"
	"repro/internal/experiments"
	"repro/internal/multi"
	"repro/sweep"
)

// Case is one named benchmark configuration. Dual-memory cases (Pools == 0)
// run through the public Session API; k-pool cases (Pools >= 2) run the
// generalised engine on the shared deterministic fixture of
// experiments.KPoolBench, with Ref selecting the retained eager oracle
// instead of the incremental scheduler; sweep cases (Sweep == true) run the
// 64-point fixture of bench_test.go through the parallel sweep engine with
// the given worker bound (0 = GOMAXPROCS) and replay policy; fork cases
// (Fork != "") measure Session.Fork plus one schedule on the fork.
type Case struct {
	Name      string
	Scheduler string // registry name passed to WithScheduler
	Size      int
	Alpha     float64
	Pools     int
	Ref       bool
	Sweep     bool
	Workers   int
	Replay    string // sweep replay policy; "" keeps the engine default (auto)
	Fork      string // "warm" or "cold": benchmark Fork()+Schedule instead
}

// defaultCases is the tracked suite.
func defaultCases() []Case {
	return []Case{
		// Dual-memory engine via the Session API (PR 1/PR 2 trajectory).
		{Name: "MemHEFT300", Scheduler: "memheft", Size: 300, Alpha: 0.5},
		{Name: "MemMinMin300", Scheduler: "memminmin", Size: 300, Alpha: 0.5},
		{Name: "HEFT1000", Scheduler: "heft", Size: 1000, Alpha: 1},
		{Name: "MemHEFT3000", Scheduler: "memheft", Size: 3000, Alpha: 0.7},
		{Name: "MemHEFT10000", Scheduler: "memheft", Size: 10000, Alpha: 0.9},
		// k-pool engine (PR 3): incremental vs the retained eager oracle.
		{Name: "MultiMemHEFT300k3", Scheduler: "memheft", Size: 300, Alpha: 0.3, Pools: 3},
		{Name: "MultiMemHEFT1000k4", Scheduler: "memheft", Size: 1000, Alpha: 0.3, Pools: 4},
		{Name: "MultiMemHEFT3000k8", Scheduler: "memheft", Size: 3000, Alpha: 0.3, Pools: 8},
		{Name: "MultiMemMinMin1000k4", Scheduler: "memminmin", Size: 1000, Alpha: 0.3, Pools: 4},
		{Name: "MultiMemHEFTRef1000k4", Scheduler: "memheft", Size: 1000, Alpha: 0.3, Pools: 4, Ref: true},
		// Sweep engine (PR 5): one 64-point batch (16 alphas × 2
		// heuristics × 2 seeds) on a warm n=1000 session, single-worker
		// vs full fan-out. On multi-core hardware the ratio of the two
		// is the engine's scaling factor. Both pin replay off so they
		// keep tracking the from-scratch engine.
		{Name: "Sweep64x1000w1", Size: 1000, Sweep: true, Workers: 1, Replay: sweep.ReplayOff},
		{Name: "Sweep64x1000wAll", Size: 1000, Sweep: true, Workers: 0, Replay: sweep.ReplayOff},
		// Warm-start sweep (PR 8): the identical workload under
		// capacity-delta replay. Sweep64x1000w1 / Sweep64x1000Replay is
		// the replay speedup on bit-identical results.
		{Name: "Sweep64x1000Replay", Size: 1000, Sweep: true, Workers: 1, Replay: sweep.ReplayAuto},
		// Copy-on-write forks (PR 8): fork a warm n=1000 session and
		// schedule once. The warm fork inherits rank/priority memos
		// behind frozen views; the cold fork re-ranks from scratch.
		{Name: "ForkWarm1000", Size: 1000, Fork: "warm"},
		{Name: "ForkCold1000", Size: 1000, Fork: "cold"},
	}
}

// run executes one case exactly like bench_test.go's harnesses: a daggen
// graph, the case's platform, and the per-case memory bound.
// testing.Benchmark self-calibrates the iteration count.
func run(c Case) (Result, error) {
	switch {
	case c.Fork != "":
		return runFork(c)
	case c.Sweep:
		return runSweep(c)
	case c.Pools >= 2:
		return runMulti(c)
	default:
		return runDual(c)
	}
}

// runFork measures Session.Fork plus one schedule on the fork against a
// parent with warm memos — the same workload as BenchmarkFork*1000 in
// bench_test.go.
func runFork(c Case) (Result, error) {
	ctx := context.Background()
	params := daggen.LargeParams()
	params.Size = c.Size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		return Result{}, err
	}
	sess, err := memsched.NewSession(g)
	if err != nil {
		return Result{}, err
	}
	p := memsched.NewDualPlatform(2, 2, memsched.Unlimited, memsched.Unlimited)
	if _, err := sess.Schedule(ctx, p, memsched.WithSeed(7)); err != nil {
		return Result{}, err
	}
	var opts []memsched.ForkOption
	if c.Fork == "cold" {
		opts = append(opts, memsched.ForkCold())
	}
	var schedErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Fork(opts...).Schedule(ctx, p, memsched.WithSeed(7)); err != nil {
				schedErr = err
				b.FailNow()
			}
		}
	})
	if schedErr != nil {
		return Result{}, schedErr
	}
	return toResult(br), nil
}

// runSweep measures the parallel sweep engine on the shared deterministic
// 64-point fixture of experiments.SweepBench — the same workload as
// BenchmarkSweep64x1000Workers* in bench_test.go — on a warm session.
func runSweep(c Case) (Result, error) {
	ctx := context.Background()
	sess, spec, err := experiments.SweepBench(c.Size, c.Workers)
	if err != nil {
		return Result{}, err
	}
	spec.Replay = c.Replay
	if _, err := sweep.Run(ctx, sess, spec); err != nil {
		return Result{}, err
	}
	var sweepErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Run(ctx, sess, spec); err != nil {
				sweepErr = err
				b.FailNow()
			}
		}
	})
	if sweepErr != nil {
		return Result{}, sweepErr
	}
	return toResult(br), nil
}

// runDual measures Session.Schedule on the dual-memory fast path. The
// session is created once (as a server would) and the loop measures the
// steady-state scheduling cost.
func runDual(c Case) (Result, error) {
	ctx := context.Background()
	params := daggen.LargeParams()
	params.Size = c.Size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		return Result{}, err
	}
	p := experiments.RandomPlatform()
	_, peak, err := experiments.HEFTReference(ctx, g, p, 7)
	if err != nil {
		return Result{}, err
	}
	bound := int64(c.Alpha * float64(peak))
	pp := multi.FromDualPlatform(p.WithBounds(bound, bound))
	sess, err := memsched.NewSession(g)
	if err != nil {
		return Result{}, err
	}
	var schedErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Schedule(ctx, pp, memsched.WithScheduler(c.Scheduler), memsched.WithSeed(7)); err != nil {
				schedErr = err
				b.FailNow()
			}
		}
	})
	if schedErr != nil {
		return Result{}, schedErr
	}
	return toResult(br), nil
}

// runMulti measures the generalised k-pool engine (or its eager reference
// oracle) on the shared deterministic fixture, holding one cache set across
// iterations as a k-pool session would.
func runMulti(c Case) (Result, error) {
	ctx := context.Background()
	params := daggen.LargeParams()
	params.Size = c.Size
	g, err := daggen.Generate(params, 7)
	if err != nil {
		return Result{}, err
	}
	in, p := experiments.KPoolBench(g, c.Pools, c.Alpha)
	var fn multi.Func
	var caches *multi.Caches
	switch {
	case c.Ref && c.Scheduler == "memheft":
		fn = multi.MemHEFTReference
	case c.Ref:
		fn = multi.MemMinMinReference
	case c.Scheduler == "memheft":
		fn, caches = multi.MemHEFT, multi.NewCaches()
	default:
		fn, caches = multi.MemMinMin, multi.NewCaches()
	}
	var schedErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fn(ctx, in, p, multi.Options{Seed: 7, Caches: caches}); err != nil {
				schedErr = err
				b.FailNow()
			}
		}
	})
	if schedErr != nil {
		return Result{}, schedErr
	}
	return toResult(br), nil
}

func toResult(br testing.BenchmarkResult) Result {
	return Result{
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Iterations:  br.N,
	}
}

// runSuite runs every case (repeat times each, keeping the fastest run)
// and assembles the report.
func runSuite(cases []Case, repeat int) (*Report, error) {
	if repeat < 1 {
		repeat = 1
	}
	rep := &Report{Suite: "scheduler-throughput", Benchmarks: make(map[string]Result, len(cases))}
	for _, c := range cases {
		var best Result
		for attempt := 0; attempt < repeat; attempt++ {
			r, err := run(c)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: %w", c.Name, err)
			}
			if attempt == 0 || r.NsPerOp < best.NsPerOp {
				best = r
			}
		}
		rep.Benchmarks[c.Name] = best
		fmt.Fprintf(os.Stderr, "%-22s %12d ns/op %8d B/op %6d allocs/op (%d iters)\n",
			c.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, best.Iterations)
	}
	return rep, nil
}
