package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSuiteTiny runs the harness on tiny dual and k-pool cases and
// checks the report is well-formed JSON with sane numbers.
func TestRunSuiteTiny(t *testing.T) {
	rep, err := runSuite([]Case{
		{Name: "tiny", Scheduler: "memheft", Size: 30, Alpha: 0.8},
		{Name: "tiny-k3", Scheduler: "memheft", Size: 30, Alpha: 0.5, Pools: 3},
		{Name: "tiny-k3-ref", Scheduler: "memheft", Size: 30, Alpha: 0.5, Pools: 3, Ref: true},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tiny", "tiny-k3", "tiny-k3-ref"} {
		r, ok := rep.Benchmarks[name]
		if !ok || r.NsPerOp <= 0 || r.Iterations <= 0 {
			t.Fatalf("malformed result for %s: %+v", name, rep)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}

// report is a test helper assembling a Report from name -> ns/op.
func report(ns map[string]int64) *Report {
	rep := &Report{Suite: "scheduler-throughput", Benchmarks: map[string]Result{}}
	for name, v := range ns {
		rep.Benchmarks[name] = Result{NsPerOp: v, Iterations: 1}
	}
	return rep
}

// TestCompareReportsFailsOnRegression is the unit test of the CI gate: a
// synthetic 1.3x regression must fail a 1.25x threshold and pass a 1.5x
// one; improvements and within-threshold drift must always pass.
func TestCompareReportsFailsOnRegression(t *testing.T) {
	base := report(map[string]int64{"A": 1000, "B": 2000, "C": 500})
	fresh := report(map[string]int64{"A": 1300, "B": 1900, "C": 505})

	regressions, _ := compareReports(base, fresh, 1.25)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "A:") {
		t.Fatalf("1.3x regression at threshold 1.25: %v", regressions)
	}
	if regressions, _ := compareReports(base, fresh, 1.5); len(regressions) != 0 {
		t.Fatalf("1.3x regression failed a 1.5x threshold: %v", regressions)
	}
	// Exactly at the threshold is not a regression (strictly-greater gate).
	exact := report(map[string]int64{"A": 1250, "B": 2000, "C": 500})
	if regressions, _ := compareReports(base, exact, 1.25); len(regressions) != 0 {
		t.Fatalf("exact-threshold ratio flagged: %v", regressions)
	}
}

// TestCompareReportsSuiteDrift: benchmarks present on only one side are
// notes, never failures — the tracked suite may grow or shrink.
func TestCompareReportsSuiteDrift(t *testing.T) {
	base := report(map[string]int64{"A": 1000, "Gone": 100})
	fresh := report(map[string]int64{"A": 1000, "New": 100})
	regressions, notes := compareReports(base, fresh, 1.25)
	if len(regressions) != 0 {
		t.Fatalf("drift flagged as regression: %v", regressions)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "Gone") || !strings.Contains(joined, "New") {
		t.Fatalf("drift not noted: %v", notes)
	}
}

// TestReadReport covers the gate's file handling: valid report round-trips,
// junk and empty reports are rejected.
func TestReadReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	rep := report(map[string]int64{"A": 123})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["A"].NsPerOp != 123 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := readReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(junk); err == nil {
		t.Fatal("junk file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"suite":"x","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(empty); err == nil {
		t.Fatal("empty report accepted")
	}
}
