package main

import (
	"encoding/json"
	"testing"
)

// TestRunSuiteTiny runs the harness on a tiny case and checks the report is
// well-formed JSON with sane numbers.
func TestRunSuiteTiny(t *testing.T) {
	rep, err := runSuite([]Case{{Name: "tiny", Scheduler: "memheft", Size: 30, Alpha: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rep.Benchmarks["tiny"]
	if !ok || r.NsPerOp <= 0 || r.Iterations <= 0 {
		t.Fatalf("malformed result: %+v", rep)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatal(err)
	}
}
