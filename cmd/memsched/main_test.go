package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExample(t *testing.T) {
	if err := run("", true, "memheft", 1, 1, 5, 5, 1, 0, false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTimelineAndJSON(t *testing.T) {
	if err := run("", true, "memminmin", 1, 1, 4, 4, 1, 0, true, "", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnlimitedBounds(t *testing.T) {
	if err := run("", true, "heft", 2, 2, -1, -1, 1, 0, false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	data := `{"tasks":[{"name":"a","wblue":1,"wred":2},{"name":"b","wblue":2,"wred":1}],
	          "edges":[{"from":0,"to":1,"file":1,"comm":1}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, "memheft", 1, 1, 10, 10, 1, 0, false, "", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesDot(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	if err := run("", true, "memheft", 1, 1, 10, 10, 1, 0, false, dot, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("dot output missing digraph")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", false, "memheft", 1, 1, 5, 5, 1, 0, false, "", false, ""); err == nil {
		t.Fatal("missing graph accepted")
	}
	if err := run("", true, "bogus", 1, 1, 5, 5, 1, 0, false, "", false, ""); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if err := run("/nonexistent/file.json", false, "memheft", 1, 1, 5, 5, 1, 0, false, "", false, ""); err == nil {
		t.Fatal("missing file accepted")
	}
	// Infeasible bounds surface the scheduler error.
	if err := run("", true, "memheft", 1, 1, 2, 2, 1, 0, false, "", false, ""); err == nil {
		t.Fatal("infeasible bounds accepted")
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "g.svg")
	if err := run("", true, "memheft", 1, 1, 10, 10, 1, 0, false, "", false, svg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Fatal("svg output missing <svg>")
	}
}
