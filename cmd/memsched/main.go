// Command memsched schedules a task graph (JSON) on a dual-memory platform
// with one of the paper's heuristics and reports the schedule, its makespan
// and its memory peaks.
//
// Usage:
//
//	memsched -graph dag.json -algo memheft -pblue 2 -pred 2 -mblue 50 -mred 50
//	memsched -example -algo memminmin -mblue 4 -mred 4
//
// With -example the built-in four-task DAG of the paper's Figure 2 is used
// instead of a file. -timeout interrupts long runs; -timeline prints the
// event table; -dot writes the graph in Graphviz syntax to the given path;
// -json writes the schedule as JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	memsched "repro"
	"repro/internal/schedule"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a JSON task graph")
		example   = flag.Bool("example", false, "use the paper's four-task example DAG")
		algo      = flag.String("algo", "memheft", "heuristic: "+strings.Join(memsched.Schedulers(), ", "))
		pBlue     = flag.Int("pblue", 1, "number of blue (CPU-side) processors")
		pRed      = flag.Int("pred", 1, "number of red (accelerator-side) processors")
		mBlue     = flag.Int64("mblue", -1, "blue memory capacity (-1 = unlimited)")
		mRed      = flag.Int64("mred", -1, "red memory capacity (-1 = unlimited)")
		seed      = flag.Int64("seed", 1, "tie-breaking seed")
		timeout   = flag.Duration("timeout", 0, "interrupt the run after this duration (0 = none)")
		timeline  = flag.Bool("timeline", false, "print the full event timeline")
		dotPath   = flag.String("dot", "", "write the graph in Graphviz format to this path")
		jsonOut   = flag.Bool("json", false, "print the schedule as JSON")
		svgPath   = flag.String("svg", "", "write a Gantt chart of the schedule (SVG) to this path")
	)
	flag.Parse()
	if err := run(*graphPath, *example, *algo, *pBlue, *pRed, *mBlue, *mRed, *seed, *timeout, *timeline, *dotPath, *jsonOut, *svgPath); err != nil {
		fmt.Fprintln(os.Stderr, "memsched:", err)
		os.Exit(1)
	}
}

func run(graphPath string, example bool, algo string, pBlue, pRed int, mBlue, mRed, seed int64, timeout time.Duration, timeline bool, dotPath string, jsonOut bool, svgPath string) error {
	var g *memsched.Graph
	switch {
	case example:
		g = memsched.PaperExample()
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = memsched.ReadGraph(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -graph FILE or -example")
	}

	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(g.DOT("graph")), 0o644); err != nil {
			return err
		}
	}

	if mBlue < 0 {
		mBlue = memsched.Unlimited
	}
	if mRed < 0 {
		mRed = memsched.Unlimited
	}
	p := memsched.NewDualPlatform(int(pBlue), int(pRed), mBlue, mRed)

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	sess, err := memsched.NewSession(g)
	if err != nil {
		return err
	}
	res, err := sess.Schedule(ctx, p, memsched.WithScheduler(algo), memsched.WithSeed(seed))
	if err != nil {
		return err
	}
	if err := res.Validate(); err != nil {
		return fmt.Errorf("internal error: produced schedule fails validation: %w", err)
	}
	s := res.Schedule

	peaks := res.PeakResidency()
	fmt.Printf("algorithm : %s\n", res.Stats.Scheduler)
	fmt.Printf("platform  : %s\n", p)
	fmt.Printf("tasks     : %d (%d edges)\n", g.NumTasks(), g.NumEdges())
	fmt.Printf("makespan  : %g\n", res.Makespan())
	fmt.Printf("peaks     : blue=%d red=%d\n", peaks[0], peaks[1])
	fmt.Printf("run       : %v (candidate-cache hit rate %.0f%%)\n", res.Stats.WallTime.Round(time.Microsecond), 100*res.Stats.CacheHitRate())

	if timeline {
		fmt.Println()
		fmt.Print(s.Render())
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(s.SVG()), 0o644); err != nil {
			return err
		}
	}
	if jsonOut {
		out := struct {
			Makespan  float64                  `json:"makespan"`
			BluePeak  int64                    `json:"bluePeak"`
			RedPeak   int64                    `json:"redPeak"`
			Tasks     []schedule.TaskPlacement `json:"tasks"`
			CommStart []float64                `json:"commStart"`
		}{res.Makespan(), peaks[0], peaks[1], s.Tasks, sanitize(s.CommStart)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	}
	return nil
}

// sanitize replaces the NaN markers of intra-memory edges by -1 so the
// output is valid JSON.
func sanitize(in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		if math.IsNaN(v) {
			out[i] = -1
		} else {
			out[i] = v
		}
	}
	return out
}
