package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/cluster"
	"repro/serve"
	"repro/workload"
)

// openLoopConfig is the -spec/-replay mode's knob set, carried alongside
// the closed-loop loadConfig (the shared fields — addr, route, replicas,
// retries — come from there).
type openLoopConfig struct {
	spec           string // workload spec path ("" = closed-loop mode)
	replay         string // recorded trace path (mutually exclusive with spec)
	record         string // write the generated trace here (requires spec)
	specSeed       int64  // seed expanding the spec into a trace
	maxOutstanding int    // cap on concurrently outstanding requests
}

func (o openLoopConfig) active() bool { return o.spec != "" || o.replay != "" }

func (o openLoopConfig) validate() error {
	if o.spec != "" && o.replay != "" {
		return fmt.Errorf("-spec and -replay are mutually exclusive (a trace already embeds its spec's expansion)")
	}
	if o.record != "" && o.spec == "" {
		return fmt.Errorf("-record needs -spec (replaying a recorded trace and re-recording it is a copy)")
	}
	if o.maxOutstanding < 1 {
		return fmt.Errorf("-max-outstanding must be >= 1")
	}
	return nil
}

// loadTrace resolves the trace to drive: expand the spec under -spec-seed,
// or decode the recorded one.
func loadTrace(o openLoopConfig) (*workload.Trace, error) {
	if o.replay != "" {
		f, err := os.Open(o.replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.DecodeTrace(bufio.NewReader(f))
		if err != nil {
			return nil, err
		}
		return tr, nil
	}
	f, err := os.Open(o.spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := workload.DecodeSpec(f)
	if err != nil {
		return nil, err
	}
	tr, err := workload.Generate(spec, o.specSeed)
	if err != nil {
		return nil, err
	}
	if o.record != "" {
		out, err := os.Create(o.record)
		if err != nil {
			return nil, err
		}
		if err := workload.EncodeTrace(out, tr); err != nil {
			out.Close()
			return nil, err
		}
		if err := out.Close(); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// openLoopReport aggregates one open-loop run: the workload Report plus
// the run-level context the closed-loop report also prints.
type openLoopReport struct {
	trace   *workload.Trace
	rep     *workload.Report
	elapsed time.Duration
	// serverShed/classSeries come from the post-run /metrics scrape
	// (zero/absent when the scrape failed; scrapeErr says why).
	serverShed  uint64
	classSeries int
	scrapeErr   error
}

func (r openLoopReport) print(w io.Writer) {
	fmt.Fprintf(w, "open-loop : %d events over %v of trace time, driven in %v\n",
		len(r.trace.Events), r.trace.Duration.Round(time.Millisecond), r.elapsed.Round(time.Millisecond))
	for _, c := range r.rep.Classes {
		fmt.Fprintf(w, "class %-12s sent=%d ok=%d shed=%d errors=%d p50=%v p99=%v maxlate=%v goodput=%.3f (%.1f rps)\n",
			c.Name+":", c.Sent, c.OK, c.Shed, c.Errors,
			time.Duration(c.P50Micros)*time.Microsecond,
			time.Duration(c.P99Micros)*time.Microsecond,
			time.Duration(c.MaxLatenessMicros)*time.Microsecond,
			c.Goodput, c.GoodputRPS)
	}
	t := r.rep.Total
	fmt.Fprintf(w, "total     : sent=%d ok=%d shed=%d errors=%d p50=%v p99=%v goodput=%.3f\n",
		t.Sent, t.OK, t.Shed, t.Errors,
		time.Duration(t.P50Micros)*time.Microsecond,
		time.Duration(t.P99Micros)*time.Microsecond, t.Goodput)
	fmt.Fprintf(w, "fairness  : jain %.4f over %d classes\n", r.rep.Fairness, len(r.rep.Classes))
	switch {
	case r.scrapeErr != nil:
		fmt.Fprintf(w, "metrics   : scrape failed: %v\n", r.scrapeErr)
	default:
		fmt.Fprintf(w, "metrics   : server memschedd_shed_total=%d, %d class-labelled series\n",
			r.serverShed, r.classSeries)
	}
}

// runOpenLoop drives the trace open-loop: every event fires at its intended
// offset from the run start regardless of how previous requests are faring
// — the clock, not the responses, paces the run. Consequences, by design:
//
//   - Bursts pile onto the server and queue or shed there; a slow server
//     cannot slow the generator down (no coordinated omission).
//   - Latency is measured from the event's *intended* arrival, so time a
//     request spent waiting for the generator's outstanding-cap slot also
//     counts against it — and is additionally reported as lateness, the
//     generator's own honesty metric.
//   - Request failures are measurements, not errors: the run exits 0 and
//     reports them per class. Only infrastructure failures (unreachable
//     server, unreadable spec) fail the run.
func runOpenLoop(ctx context.Context, cfg loadConfig, o openLoopConfig) (*openLoopReport, error) {
	tr, err := loadTrace(o)
	if err != nil {
		return nil, err
	}
	baseOpts := []serve.ClientOption{}
	if cfg.retries > 0 {
		baseOpts = append(baseOpts, serve.WithRetry(serve.RetryPolicy{
			MaxAttempts: cfg.retries + 1,
			BaseDelay:   cfg.backoff,
		}))
	}
	// One client per class: each carries its class label to the server, so
	// the /metrics breakdown mirrors the report's.
	clients := make([]*serve.Client, len(tr.Classes))
	for i, c := range tr.Classes {
		opts := append(append([]serve.ClientOption{}, baseOpts...),
			serve.WithRequestHeader(serve.WorkloadClassHeader, c.Name))
		cl, err := newLoadClient(cfg, opts)
		if err != nil {
			return nil, err
		}
		clients[i] = cl
	}
	if err := clients[0].Health(ctx); err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}

	// Register the catalog up front (content-addressed, so re-running a
	// trace against a warm server is idempotent). IDs equal the trace's
	// recorded hashes; trusting that here would miss a generator drift, so
	// verify.
	set, err := tr.Catalog.Build()
	if err != nil {
		return nil, err
	}
	for i, g := range set.Graphs {
		reg, err := clients[0].RegisterGraph(ctx, g, nil)
		if err != nil {
			return nil, fmt.Errorf("registering catalog graph %d: %w", i, err)
		}
		if reg.ID != tr.Graphs[i].Hash {
			return nil, fmt.Errorf("catalog graph %d registered as %s, but the trace names %s (catalog drift)", i, reg.ID, tr.Graphs[i].Hash)
		}
	}

	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	outcomes := make([]workload.Outcome, len(tr.Events))
	sem := make(chan struct{}, o.maxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

dispatch:
	for ei, ev := range tr.Events {
		intended := start.Add(ev.At)
		if wait := time.Until(intended); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break dispatch
			}
		}
		// The outstanding cap is the one place the generator is not purely
		// open-loop (an unbounded fan-out would melt the generator before
		// the server); time blocked here is charged to the request as
		// lateness and latency, never hidden.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		wg.Add(1)
		go func(ei int, ev workload.Event, intended time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			cl := clients[ev.Class]
			id := tr.Graphs[ev.Graph].Hash
			lateness := time.Since(intended)
			if lateness < 0 {
				lateness = 0
			}
			err := issue(ctx, cl, ev, id, pools, tr.Classes[ev.Class].SweepAlphas, cfg)
			out := workload.Outcome{Event: ei, Lateness: lateness}
			switch {
			case err == nil:
				out.Status = workload.StatusOK
				out.Latency = time.Since(intended)
			case isShed(err):
				out.Status = workload.StatusShed
			default:
				out.Status = workload.StatusError
			}
			outcomes[ei] = out
		}(ei, ev, intended)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Events never dispatched (cancelled run) have a zero Outcome; mark
	// them explicitly as errors so the report's accounting is honest.
	for i := range outcomes {
		if outcomes[i].Status == "" {
			outcomes[i] = workload.Outcome{Event: i, Status: workload.StatusError}
		}
	}
	rep := &openLoopReport{
		trace:   tr,
		rep:     workload.NewReport(tr, outcomes),
		elapsed: elapsed,
	}
	rep.serverShed, rep.classSeries, rep.scrapeErr = scrapeClassMetrics(ctx, cfg.addr)
	return rep, nil
}

// newLoadClient builds one request client under the shared routing config.
func newLoadClient(cfg loadConfig, opts []serve.ClientOption) (*serve.Client, error) {
	switch cfg.route {
	case "", "router":
		return serve.NewClient(cfg.addr, opts...), nil
	case "client":
		if cfg.replicas == "" {
			return nil, fmt.Errorf("-route client needs -replicas to route over")
		}
		reps, err := parseReplicaURLs(cfg.replicas)
		if err != nil {
			return nil, err
		}
		return serve.NewClusterClient(reps, opts...)
	default:
		return nil, fmt.Errorf("unknown -route %q (want router or client)", cfg.route)
	}
}

// issue sends one trace event as its corresponding API call.
func issue(ctx context.Context, cl *serve.Client, ev workload.Event, id string, pools []serve.PoolSpec, sweepAlphas int, cfg loadConfig) error {
	switch ev.Kind {
	case workload.KindSimulate:
		_, err := cl.Simulate(ctx, serve.ScheduleRequest{GraphID: id, Pools: pools})
		return err
	case workload.KindSweep:
		if sweepAlphas < 1 {
			sweepAlphas = 4
		}
		alphas := make([]float64, sweepAlphas)
		for i := range alphas {
			alphas[i] = float64(i+1) / float64(sweepAlphas)
		}
		_, err := cl.Sweep(ctx, serve.SweepRequest{
			GraphID:    id,
			Pools:      pools,
			Alphas:     alphas,
			Schedulers: []string{cfg.scheduler},
			Seeds:      []int64{cfg.seed},
			Workers:    cfg.sweepWorkers,
		}, nil)
		return err
	default: // schedule
		_, err := cl.Schedule(ctx, serve.ScheduleRequest{
			GraphID:   id,
			Pools:     pools,
			Scheduler: cfg.scheduler,
			Seed:      cfg.seed,
		})
		return err
	}
}

// isShed reports a structured 429 — the server's admission control (load
// shedder or rate limiter) refusing the request, which the open-loop
// report counts separately from errors: shedding under a burst is the
// server working as designed.
func isShed(err error) bool {
	var apiErr *serve.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

// parseReplicaURLs extracts the URL list of a -replicas spec ("id=url,..."
// or bare urls), reusing the cluster package's parser.
func parseReplicaURLs(spec string) ([]string, error) {
	reps, err := cluster.ParseReplicas(spec)
	if err != nil {
		return nil, err
	}
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.URL
	}
	return urls, nil
}

// scrapeClassMetrics reads the server's /metrics once after the run and
// pulls out the shed counter plus how many class-labelled series the run
// left behind — proof the per-class labels flowed end to end.
func scrapeClassMetrics(ctx context.Context, addr string) (shed uint64, classSeries int, err error) {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "memschedd_shed_total "):
			fmt.Sscanf(line, "memschedd_shed_total %d", &shed)
		case strings.HasPrefix(line, "memschedd_class_requests_total{"):
			classSeries++
		}
	}
	return shed, classSeries, sc.Err()
}
