package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/serve"
)

// TestLoadRunAgainstLocalServer drives the load generator against an
// in-process server: every request must succeed and, since the working set
// is registered up front and fits the cache, the session-cache hit rate
// must be at least 90% — the service-level acceptance bar for repeated
// graphs.
func TestLoadRunAgainstLocalServer(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Config{}).Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := run(ctx, loadConfig{
		addr:      ts.URL,
		clients:   4,
		requests:  25,
		graphs:    5,
		tasks:     60,
		scheduler: "memheft",
		seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed != 0 {
		t.Fatalf("%d of %d requests failed", rep.failed, rep.sent)
	}
	if rep.hitRate < 0.9 {
		t.Fatalf("session-cache hit rate %.2f, want >= 0.9", rep.hitRate)
	}
	if rep.p50 <= 0 || rep.p99 < rep.p50 {
		t.Fatalf("implausible latency percentiles: p50 %v, p99 %v", rep.p50, rep.p99)
	}

	var out strings.Builder
	rep.print(&out)
	for _, want := range []string{"requests", "latency", "p99", "session hit rate"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSweepLoadRunAgainstLocalServer drives the -sweep mode against an
// in-process server: every sweep must stream its full point set (requests ×
// alphas × 2 schedulers) and the registered working set must stay warm.
func TestSweepLoadRunAgainstLocalServer(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Config{}).Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cfg := loadConfig{
		addr:     ts.URL,
		clients:  2,
		requests: 3,
		graphs:   2,
		tasks:    40,
		seed:     1,
		sweep:    true,
		alphas:   5,
	}
	rep, err := run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed != 0 {
		t.Fatalf("%d of %d sweeps failed", rep.failed, rep.sent)
	}
	wantPoints := int64(cfg.clients * cfg.requests * cfg.alphas * 2)
	if rep.points != wantPoints {
		t.Fatalf("streamed %d points, want %d", rep.points, wantPoints)
	}
	if rep.hitRate < 0.9 {
		t.Fatalf("session-cache hit rate %.2f, want >= 0.9", rep.hitRate)
	}

	var out strings.Builder
	rep.print(&out)
	if !strings.Contains(out.String(), "points/s") {
		t.Fatalf("sweep report missing point throughput:\n%s", out.String())
	}
}

// TestChaosLoadRunRecoversAllRequests is the resilience loop in miniature:
// a chaos-injecting server at rate 0.3 and a load run with a retry budget —
// every request must still land, the client must actually have retried, and
// the report must surface both.
func TestChaosLoadRunRecoversAllRequests(t *testing.T) {
	srv := serve.NewServer(serve.Config{
		ChaosRate:       0.3,
		ChaosSeed:       11,
		ChaosMaxLatency: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := run(ctx, loadConfig{
		addr:      ts.URL,
		clients:   4,
		requests:  10,
		graphs:    3,
		tasks:     40,
		scheduler: "memheft",
		seed:      1,
		retries:   8,
		backoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed != 0 {
		t.Fatalf("%d of %d requests failed despite the retry budget: %v", rep.failed, rep.sent, rep.errClasses)
	}
	st := srv.Stats()
	if st.ChaosLatency+st.ChaosErrors+st.ChaosTruncations == 0 {
		t.Fatal("chaos injected nothing; the run proved nothing")
	}
	if rep.client.Retries == 0 {
		t.Fatal("client metrics show no retries under rate-0.3 chaos")
	}

	var out strings.Builder
	rep.print(&out)
	if !strings.Contains(out.String(), "resilience") {
		t.Fatalf("report missing the resilience line:\n%s", out.String())
	}
}

// TestErrClass pins the report's error-class buckets.
func TestErrClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&serve.APIError{Status: 429, Code: serve.CodeShed}, "429"},
		{&serve.APIError{Status: 503, Code: serve.CodeUnavailable}, "503"},
		{&serve.APIError{Status: 422, Code: serve.CodeMemoryBound}, "422"},
		{&serve.APIError{Status: 413, Code: serve.CodeTooLarge}, "413"},
		{&serve.APIError{Status: 408, Code: serve.CodeTimeout}, "408"},
		{&serve.APIError{Status: 200, Code: serve.CodeTimeout}, "stream-error"},
		{serve.ErrStreamTruncated, "truncated"},
		{serve.ErrBreakerOpen, "breaker-open"},
		{context.DeadlineExceeded, "cancelled"},
		{errors.New("dial tcp: connection refused"), "transport"},
	}
	for _, tc := range cases {
		if got := errClass(tc.err); got != tc.want {
			t.Errorf("errClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lat, 0.5); p != 5 {
		t.Fatalf("p50 = %d, want 5", p)
	}
	if p := percentile(lat, 0.99); p != 10 {
		t.Fatalf("p99 = %d, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %d, want 0", p)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(context.Background(), loadConfig{addr: "http://127.0.0.1:0", clients: 0, requests: 1, graphs: 1, tasks: 1}); err == nil {
		t.Fatal("zero clients should be rejected")
	}
}
