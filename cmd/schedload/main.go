// Command schedload is a load generator for memschedd: it registers a set
// of random task graphs, hammers the /v1/schedule endpoint from concurrent
// clients, and reports throughput, latency percentiles and the
// session-cache hit rate observed by the server. Every request carries a
// generated X-Request-ID, and the report names the -slowest N requests by
// id — joinable against the server's access logs and /debug/traces.
//
// With -sweep every request is a POST /v1/sweep batch instead: a memory-
// fraction sweep of -alphas steps across the memory-aware heuristics,
// streamed back as NDJSON. The report then also counts sweep points and
// point throughput — the amortisation the batch endpoint exists for.
//
// With -replicas the report attributes cache behaviour per replica of a
// cluster (probing each replica's /healthz before and after the run),
// and the session hit rate becomes cluster-wide. Traffic still flows
// through -addr — normally a router — unless -route client routes each
// request directly to its ring owner with no router hop. With -retries,
// a structured 404 (a replica died and took its registered sessions with
// it) recovers by re-registering the graph — it lands on the new ring
// owner — and retrying there.
//
// With -spec the generator switches from closed-loop to **open-loop**: a
// declarative workload spec (package repro/workload) of client classes with
// Poisson/Gamma/Weibull arrival processes, Zipf graph popularity and
// per-class SLOs is expanded into a deterministic event trace, and every
// request fires at its intended offset from the run start — the clock paces
// the run, not the responses, so bursts queue and shed at the server and
// coordinated omission is measured instead of hidden (latency counts from
// intended arrival; dispatch delay is reported as lateness). The report
// breaks down per class (p50/p99, goodput against the class SLO, Jain
// fairness) and each request carries its class in X-Workload-Class, so the
// same breakdown appears in the server's /metrics. -record writes the
// expanded trace; -replay drives a recorded one (byte-identical workload,
// no spec needed). In open-loop mode request failures are measurements,
// not process errors: the run exits 0 and reports them.
//
// Usage:
//
//	schedload -addr http://127.0.0.1:8080 -clients 8 -requests 100 -graphs 16 -tasks 100
//	schedload -addr http://127.0.0.1:8080 -sweep -alphas 10 -clients 4 -requests 20
//	schedload -addr http://127.0.0.1:8080 \
//	  -replicas "a=http://127.0.0.1:8081,b=http://127.0.0.1:8082"
//	schedload -route client -replicas "http://127.0.0.1:8081,http://127.0.0.1:8082"
//	schedload -addr http://127.0.0.1:8080 -spec workload.json -spec-seed 7 -record run.ndjson
//	schedload -addr http://127.0.0.1:8080 -replay run.ndjson
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	memsched "repro"
	"repro/cluster"
	"repro/serve"
)

type loadConfig struct {
	addr      string
	clients   int // concurrent client goroutines
	requests  int // schedule (or sweep) requests per client
	graphs    int // distinct graphs in the working set
	tasks     int // tasks per graph
	scheduler string
	seed      int64
	timeout   time.Duration

	retries int           // retry attempts beyond the first per request (0 = off)
	backoff time.Duration // base delay of the retry backoff

	sweep        bool // drive POST /v1/sweep instead of /v1/schedule
	alphas       int  // memory fractions per sweep request
	sweepWorkers int  // per-request worker bound (0 = server cap)

	replicas string // cluster replica set for per-replica attribution
	route    string // "router" (via -addr) or "client" (ring-route directly)

	slowest int // slowest requests reported with their X-Request-ID
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "base URL of the memschedd server")
	flag.IntVar(&cfg.clients, "clients", 8, "concurrent client goroutines")
	flag.IntVar(&cfg.requests, "requests", 50, "schedule requests per client")
	flag.IntVar(&cfg.graphs, "graphs", 8, "distinct graphs in the working set")
	flag.IntVar(&cfg.tasks, "tasks", 100, "tasks per generated graph")
	flag.StringVar(&cfg.scheduler, "scheduler", "memheft", "heuristic to request")
	flag.Int64Var(&cfg.seed, "seed", 1, "base seed of the graph generator")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "overall deadline of the load run")
	flag.IntVar(&cfg.retries, "retries", 0, "retry attempts beyond the first per request (0 = no retries)")
	flag.DurationVar(&cfg.backoff, "backoff", 25*time.Millisecond, "base delay of the exponential retry backoff (with -retries)")
	flag.BoolVar(&cfg.sweep, "sweep", false, "send /v1/sweep batch requests instead of /v1/schedule")
	flag.IntVar(&cfg.alphas, "alphas", 8, "memory fractions per sweep request (with -sweep)")
	flag.IntVar(&cfg.sweepWorkers, "sweep-workers", 0, "per-sweep worker bound (0 = server cap; with -sweep)")
	flag.StringVar(&cfg.replicas, "replicas", "", `cluster replica set ("id=url,..." or bare urls) for per-replica cache attribution`)
	flag.StringVar(&cfg.route, "route", "router", `request path in a cluster: "router" (everything via -addr) or "client" (ring-route straight to -replicas owners)`)
	flag.IntVar(&cfg.slowest, "slowest", 5, "report the N slowest requests with their X-Request-ID (0 = off)")
	var ol openLoopConfig
	flag.StringVar(&ol.spec, "spec", "", "workload spec (JSON, package repro/workload): switch to open-loop mode")
	flag.StringVar(&ol.replay, "replay", "", "recorded trace (NDJSON) to drive open-loop instead of expanding a spec")
	flag.StringVar(&ol.record, "record", "", "write the expanded trace here for later -replay (with -spec)")
	flag.Int64Var(&ol.specSeed, "spec-seed", 1, "seed expanding -spec into its event trace")
	flag.IntVar(&ol.maxOutstanding, "max-outstanding", 256, "cap on concurrently outstanding open-loop requests (blocking counts as lateness)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	if ol.active() {
		if err := ol.validate(); err != nil {
			fmt.Fprintln(os.Stderr, "schedload:", err)
			os.Exit(1)
		}
		rep, err := runOpenLoop(ctx, cfg, ol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedload:", err)
			os.Exit(1)
		}
		rep.print(os.Stdout)
		return // open-loop failures are measurements, not exit codes
	}
	rep, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
	rep.print(os.Stdout)
	if rep.failed > 0 {
		os.Exit(1)
	}
}

// report aggregates one load run.
type report struct {
	sent, failed int
	points       int64 // sweep point records received (sweep mode)
	elapsed      time.Duration
	p50, p99     time.Duration
	hitRate      float64 // session-cache hit rate over the run, from /v1/stats
	candHitRate  float64 // engine candidate-memo hit rate over the run

	errClasses map[string]int      // failed requests by error class (terminal outcome)
	client     serve.ClientMetrics // attempt/retry counters of the shared client

	// slow holds the N slowest requests (slowest first) with the
	// X-Request-ID each one carried, so a bad percentile is immediately
	// joinable against the server's access logs and /debug/traces.
	slow []reqSample

	// Per-replica attribution (with -replicas): the post-run healthz
	// snapshots plus the cluster-wide hit/miss deltas they sum to.
	replicas                   []replicaReport
	clusterHits, clusterMisses uint64
}

// reqSample is one successful request: the id it carried on the wire
// (the base of the X-Request-ID header; retries append "-<attempt>")
// and the latency observed by the generator.
type reqSample struct {
	id  string
	lat time.Duration
}

// replicaReport is one replica's post-run /healthz snapshot; healthy is
// false (with zero counters) when the replica did not answer the probe.
type replicaReport struct {
	cluster.Replica
	healthy bool
	hr      serve.HealthResponse
}

// errClass buckets a request's terminal error for the report: structured
// API errors by status (408, 413, 422, 429, 503, ...), truncated streams,
// an open breaker, the run's own deadline, and everything else as
// transport (connection resets, refused connections).
func errClass(err error) string {
	var apiErr *serve.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Status == http.StatusOK {
			return "stream-error" // typed mid-stream error record
		}
		return strconv.Itoa(apiErr.Status)
	}
	switch {
	case errors.Is(err, serve.ErrStreamTruncated):
		return "truncated"
	case errors.Is(err, serve.ErrBreakerOpen):
		return "breaker-open"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "transport"
	}
}

func (r report) print(w io.Writer) {
	ok := r.sent - r.failed
	fmt.Fprintf(w, "requests  : %d ok, %d failed in %v (%.0f req/s)\n",
		ok, r.failed, r.elapsed.Round(time.Millisecond), float64(ok)/r.elapsed.Seconds())
	if r.points > 0 {
		fmt.Fprintf(w, "points    : %d sweep points (%.0f points/s)\n",
			r.points, float64(r.points)/r.elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency   : p50 %v, p99 %v\n", r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond))
	for i, s := range r.slow {
		fmt.Fprintf(w, "slowest #%d: %v id=%s\n", i+1, s.lat.Round(time.Microsecond), s.id)
	}
	fmt.Fprintf(w, "cache     : session hit rate %.1f%%, candidate hit rate %.1f%%\n",
		100*r.hitRate, 100*r.candHitRate)
	if r.client.Retries > 0 || r.client.BreakerTrips > 0 {
		fmt.Fprintf(w, "resilience: %d attempts, %d retries, breaker %s (%d trips)\n",
			r.client.Attempts, r.client.Retries, r.client.BreakerState, r.client.BreakerTrips)
	}
	if len(r.errClasses) > 0 {
		classes := make([]string, 0, len(r.errClasses))
		for c := range r.errClasses {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(w, "errors    :")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, r.errClasses[c])
		}
		fmt.Fprintln(w)
	}
	for _, rr := range r.replicas {
		fmt.Fprintf(w, "replica %s url=%s healthy=%t sessions=%d hits=%d misses=%d evictions=%d\n",
			rr.ID, rr.URL, rr.healthy, rr.hr.SessionsCached, rr.hr.SessionHits, rr.hr.SessionMisses, rr.hr.Evictions)
	}
}

// run generates and registers the graph working set, fans out the
// configured clients, and derives the report from latencies plus the
// server's stats delta.
func run(ctx context.Context, cfg loadConfig) (report, error) {
	if cfg.clients < 1 || cfg.requests < 1 || cfg.graphs < 1 || cfg.tasks < 1 {
		return report{}, fmt.Errorf("clients, requests, graphs and tasks must all be >= 1")
	}
	if cfg.sweep && cfg.alphas < 1 {
		return report{}, fmt.Errorf("alphas must be >= 1")
	}
	var opts []serve.ClientOption
	if cfg.retries > 0 {
		opts = append(opts, serve.WithRetry(serve.RetryPolicy{
			MaxAttempts: cfg.retries + 1,
			BaseDelay:   cfg.backoff,
		}))
	}
	var replicas []cluster.Replica
	if cfg.replicas != "" {
		var err error
		if replicas, err = cluster.ParseReplicas(cfg.replicas); err != nil {
			return report{}, err
		}
	}
	var client *serve.Client
	switch cfg.route {
	case "", "router":
		client = serve.NewClient(cfg.addr, opts...)
	case "client":
		if len(replicas) == 0 {
			return report{}, fmt.Errorf("-route client needs -replicas to route over")
		}
		urls := make([]string, len(replicas))
		for i, rep := range replicas {
			urls[i] = rep.URL
		}
		var err error
		if client, err = serve.NewClusterClient(urls, opts...); err != nil {
			return report{}, err
		}
	default:
		return report{}, fmt.Errorf("unknown -route %q (want router or client)", cfg.route)
	}
	if err := client.Health(ctx); err != nil {
		return report{}, fmt.Errorf("server not reachable: %w", err)
	}

	params := memsched.SmallRandParams()
	params.Size = cfg.tasks
	ids := make([]string, cfg.graphs)
	graphs := make([]*memsched.Graph, cfg.graphs)
	for i := range ids {
		g, err := memsched.GenerateRandom(params, cfg.seed+int64(i))
		if err != nil {
			return report{}, fmt.Errorf("generating graph %d: %w", i, err)
		}
		reg, err := client.RegisterGraph(ctx, g, nil)
		if err != nil {
			return report{}, fmt.Errorf("registering graph %d: %w", i, err)
		}
		ids[i] = reg.ID
		graphs[i] = g
	}

	before, err := client.Stats(ctx)
	if err != nil {
		return report{}, err
	}
	beforeHealth := probeReplicas(ctx, replicas)

	// Unbounded pools keep every generated graph feasible, so the run
	// measures service latency rather than memory_bound rejections. Sweep
	// mode fractions the memory instead — the low-alpha points are
	// expected to be memory-bound, which is part of the workload.
	pools := []serve.PoolSpec{{Procs: 2}, {Procs: 2}}
	alphas := make([]float64, cfg.alphas)
	for i := range alphas {
		alphas[i] = float64(i+1) / float64(cfg.alphas)
	}
	latencies := make([][]reqSample, cfg.clients)
	failures := make([]int, cfg.clients)
	attempted := make([]int, cfg.clients)
	points := make([]int64, cfg.clients)
	errCounts := make([]map[string]int, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]reqSample, 0, cfg.requests)
			for i := 0; i < cfg.requests; i++ {
				idx := (c + i) % len(ids)
				id := ids[idx]
				attempted[c]++
				// Pin this request's X-Request-ID so the report can name
				// its slowest requests in terms the server's access logs
				// and /debug/traces also use.
				reqID := serve.NewRequestID()
				rctx := serve.ContextWithRequestID(ctx, reqID)
				t0 := time.Now()
				doReq := func() error {
					if cfg.sweep {
						sum, err := client.Sweep(rctx, serve.SweepRequest{
							GraphID:    id,
							Pools:      pools,
							Alphas:     alphas,
							Schedulers: []string{"memheft", "memminmin"},
							Seeds:      []int64{cfg.seed},
							Workers:    cfg.sweepWorkers,
						}, nil)
						if sum != nil {
							points[c] += int64(sum.Points)
						}
						return err
					}
					_, err := client.Schedule(rctx, serve.ScheduleRequest{
						GraphID:   id,
						Pools:     pools,
						Scheduler: cfg.scheduler,
						Seed:      cfg.seed,
					})
					return err
				}
				err := doReq()
				if cfg.retries > 0 && isNotFound(err) && ctx.Err() == nil {
					// The graph's ring owner died: the session died with it
					// and traffic failed over to a replica that never saw
					// the registration. Registration is content-addressed
					// and idempotent, so re-register — it lands on the new
					// owner — and retry the request there.
					if _, rerr := client.RegisterGraph(rctx, graphs[idx], nil); rerr == nil {
						err = doReq()
					}
				}
				if err != nil {
					failures[c]++
					if errCounts[c] == nil {
						errCounts[c] = make(map[string]int)
					}
					errCounts[c][errClass(err)]++
					if ctx.Err() != nil {
						break
					}
					continue
				}
				lats = append(lats, reqSample{id: reqID, lat: time.Since(t0)})
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := client.Stats(ctx)
	if err != nil {
		return report{}, err
	}
	afterHealth := probeReplicas(ctx, replicas)

	var all []reqSample
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lat < all[j].lat })
	sorted := make([]time.Duration, len(all))
	for i, s := range all {
		sorted[i] = s.lat
	}
	rep := report{
		elapsed:     elapsed,
		p50:         percentile(sorted, 0.50),
		p99:         percentile(sorted, 0.99),
		hitRate:     rateDelta(after.SessionHits, before.SessionHits, after.SessionMisses, before.SessionMisses),
		candHitRate: rateDelta(after.CandidateHits, before.CandidateHits, after.CandidateMisses, before.CandidateMisses),
		errClasses:  make(map[string]int),
		client:      client.Metrics(),
	}
	for c := range failures {
		rep.failed += failures[c]
		rep.sent += attempted[c] // counts only requests actually issued (a cancelled run stops early)
		rep.points += points[c]
		for class, n := range errCounts[c] {
			rep.errClasses[class] += n
		}
	}
	for i := len(all) - 1; i >= 0 && len(rep.slow) < cfg.slowest; i-- {
		rep.slow = append(rep.slow, all[i])
	}

	// With a replica set, per-replica healthz deltas replace the single
	// /v1/stats delta: through a router (or a cluster client), Stats
	// lands on one arbitrary replica and cannot see the cluster-wide
	// hit rate.
	for _, rp := range replicas {
		a, b := afterHealth[rp.ID], beforeHealth[rp.ID]
		rr := replicaReport{Replica: rp}
		if a != nil {
			rr.healthy, rr.hr = true, *a
		}
		rep.replicas = append(rep.replicas, rr)
		if a == nil || b == nil {
			continue
		}
		clusterHits := rep.clusterHits + a.SessionHits - b.SessionHits
		clusterMisses := rep.clusterMisses + a.SessionMisses - b.SessionMisses
		rep.clusterHits, rep.clusterMisses = clusterHits, clusterMisses
	}
	if rep.clusterHits+rep.clusterMisses > 0 {
		rep.hitRate = float64(rep.clusterHits) / float64(rep.clusterHits+rep.clusterMisses)
	}
	return rep, nil
}

// isNotFound reports a structured 404 — in a cluster, the signature of a
// schedule-by-id request whose session no longer exists on the replica
// that answered (its original owner is gone).
func isNotFound(err error) bool {
	var apiErr *serve.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// probeReplicas snapshots every replica's /healthz (nil for a replica
// that does not answer — dead, or still coming up).
func probeReplicas(ctx context.Context, replicas []cluster.Replica) map[string]*serve.HealthResponse {
	out := make(map[string]*serve.HealthResponse, len(replicas))
	for _, rep := range replicas {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		hr, err := serve.NewClient(rep.URL).Healthz(pctx)
		cancel()
		if err != nil {
			out[rep.ID] = nil
			continue
		}
		out[rep.ID] = &hr
	}
	return out
}

// percentile returns the q-quantile of sorted latencies (zero when empty).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// rateDelta returns hits/(hits+misses) over the counter deltas of one run.
// Negative deltas (the before/after /v1/stats landed on different cluster
// replicas) report 0 rather than underflowing.
func rateDelta(hitsAfter, hitsBefore, missAfter, missBefore uint64) float64 {
	if hitsAfter < hitsBefore || missAfter < missBefore {
		return 0
	}
	hits := hitsAfter - hitsBefore
	misses := missAfter - missBefore
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
