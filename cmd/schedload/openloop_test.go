package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/serve"
)

const testSpecJSON = `{
  "version": 1,
  "duration_s": 1,
  "catalog": {"graphs": 4, "tasks": 6, "seed": 3},
  "classes": [
    {"name": "fg", "arrival": {"process": "poisson", "rate": 40},
     "mix": {"schedule": 1}, "zipf": 1.0, "slo_ms": 250},
    {"name": "bg", "arrival": {"process": "gamma", "rate": 10, "shape": 0.5},
     "mix": {"schedule": 1, "simulate": 1}, "slo_ms": 500}
  ]
}`

// TestOpenLoopRecordReplay drives a spec open-loop against a live
// in-process server, records the trace, replays the recording, and checks
// the two runs measured the same workload (identical sent counts per
// class) and that the recorded trace is byte-stable across the round trip.
func TestOpenLoopRecordReplay(t *testing.T) {
	srv := serve.NewServer(serve.Config{CacheSize: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	tracePath := filepath.Join(dir, "trace.ndjson")
	if err := os.WriteFile(specPath, []byte(testSpecJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := loadConfig{addr: ts.URL, scheduler: "memheft", seed: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	recorded, err := runOpenLoop(ctx, cfg, openLoopConfig{
		spec: specPath, record: tracePath, specSeed: 11, maxOutstanding: 32,
	})
	if err != nil {
		t.Fatalf("open-loop spec run: %v", err)
	}
	if recorded.rep.Total.Sent != len(recorded.trace.Events) || recorded.rep.Total.Sent == 0 {
		t.Fatalf("sent %d of %d trace events", recorded.rep.Total.Sent, len(recorded.trace.Events))
	}
	if recorded.rep.Total.Errors != 0 {
		t.Fatalf("open-loop run had %d errors against a healthy server: %+v", recorded.rep.Total.Errors, recorded.rep.Classes)
	}
	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("recorded trace missing: %v", err)
	}

	replayed, err := runOpenLoop(ctx, cfg, openLoopConfig{
		replay: tracePath, maxOutstanding: 32,
	})
	if err != nil {
		t.Fatalf("open-loop replay run: %v", err)
	}
	for i := range recorded.rep.Classes {
		a, b := recorded.rep.Classes[i], replayed.rep.Classes[i]
		if a.Name != b.Name || a.Sent != b.Sent {
			t.Fatalf("replay class %d drifted: recorded %s sent=%d, replayed %s sent=%d",
				i, a.Name, a.Sent, b.Name, b.Sent)
		}
	}
	// Recording the replayed trace is forbidden (it would be a copy), but
	// the decoded trace must carry identical events.
	if len(replayed.trace.Events) != len(recorded.trace.Events) {
		t.Fatalf("replayed %d events, recorded %d", len(replayed.trace.Events), len(recorded.trace.Events))
	}
	if !bytes.Contains(traceBytes, []byte(`"type":"trace"`)) {
		t.Fatal("recorded trace lacks its header record")
	}

	// The per-class labels must have reached the server's metrics.
	if replayed.scrapeErr != nil {
		t.Fatalf("metrics scrape failed: %v", replayed.scrapeErr)
	}
	if replayed.classSeries == 0 {
		t.Fatal("no class-labelled series on the server after a labelled run")
	}

	// The report prints one greppable line per class plus fairness.
	var buf strings.Builder
	replayed.print(&buf)
	out := buf.String()
	for _, want := range []string{"class fg:", "class bg:", "p99=", "goodput=", "fairness  : jain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestOpenLoopConfigValidation pins the flag-combination rules.
func TestOpenLoopConfigValidation(t *testing.T) {
	if err := (openLoopConfig{spec: "a", replay: "b", maxOutstanding: 1}).validate(); err == nil {
		t.Fatal("spec+replay must be rejected")
	}
	if err := (openLoopConfig{replay: "b", record: "c", maxOutstanding: 1}).validate(); err == nil {
		t.Fatal("record without spec must be rejected")
	}
	if err := (openLoopConfig{spec: "a", maxOutstanding: 0}).validate(); err == nil {
		t.Fatal("zero max-outstanding must be rejected")
	}
	if err := (openLoopConfig{spec: "a", record: "c", maxOutstanding: 8}).validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
