// Command memschedd serves the memory-aware scheduling engines over
// HTTP/JSON (see package repro/serve for the endpoint reference). It caches
// warm scheduling sessions per graph, bounds concurrent runs, and shuts
// down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	memschedd -addr 127.0.0.1:8080 -cache 256 -max-inflight 64
//
// Smoke test against a running daemon:
//
//	curl -s localhost:8080/v1/schedulers
//	curl -s -X POST localhost:8080/v1/schedule -d '{
//	  "graph": {"tasks": [{"wblue": 2, "wred": 1}], "edges": []},
//	  "pools": [{"procs": 1, "capacity": 8}, {"procs": 1, "capacity": 4}]
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8080", "listen address")
		cacheSize       = flag.Int("cache", 256, "maximum number of cached graph sessions (LRU)")
		maxInFlight     = flag.Int("max-inflight", 64, "maximum concurrently executing scheduling runs")
		maxBytes        = flag.Int64("max-request-bytes", 8<<20, "maximum request body size in bytes")
		maxRunTime      = flag.Duration("max-runtime", 30*time.Second, "hard cap on one scheduling run")
		rateLimit       = flag.Float64("rate-limit", 0, "token-bucket rate limit on /v1 endpoints in requests/sec (0 = off)")
		rateBurst       = flag.Int("rate-burst", 0, "token-bucket depth (0 = ceil(rate-limit))")
		shedQueue       = flag.Int("shed-queue", 0, "queue depth beyond which a saturated server sheds with 429 (0 = never shed)")
		chaosRate       = flag.Float64("chaos-rate", 0, "fault-injection probability per /v1 request, 0..1 (0 = off)")
		chaosSeed       = flag.Int64("chaos-seed", 0, "seed for the deterministic chaos PRNG")
		chaosLatency    = flag.Duration("chaos-max-latency", 25*time.Millisecond, "upper bound on one injected latency fault")
		chaosFaults     = flag.String("chaos-faults", "", "comma-separated fault kinds to inject: latency,error,truncate (empty = all)")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "memschedd: unexpected arguments:", flag.Args())
		os.Exit(2)
	}
	var faults []string
	for _, f := range strings.Split(*chaosFaults, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		switch f {
		case serve.FaultLatency, serve.FaultError, serve.FaultTruncate:
			faults = append(faults, f)
		default:
			fmt.Fprintf(os.Stderr, "memschedd: unknown -chaos-faults kind %q (known: %s,%s,%s)\n",
				f, serve.FaultLatency, serve.FaultError, serve.FaultTruncate)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewServer(serve.Config{
		Addr:            *addr,
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInFlight,
		MaxRequestBytes: *maxBytes,
		MaxRunTime:      *maxRunTime,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		ShedQueueDepth:  *shedQueue,
		ChaosRate:       *chaosRate,
		ChaosSeed:       *chaosSeed,
		ChaosMaxLatency: *chaosLatency,
		ChaosFaults:     faults,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		ShutdownTimeout: *shutdownTimeout,
		Logf:            log.Printf,
	})
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("memschedd: %v", err)
	}
}
