// Command memschedd serves the memory-aware scheduling engines over
// HTTP/JSON (see package repro/serve for the endpoint reference). It caches
// warm scheduling sessions per graph, bounds concurrent runs, and shuts
// down gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	memschedd -addr 127.0.0.1:8080 -cache 256 -max-inflight 64
//
// Smoke test against a running daemon:
//
//	curl -s localhost:8080/v1/schedulers
//	curl -s -X POST localhost:8080/v1/schedule -d '{
//	  "graph": {"tasks": [{"wblue": 2, "wred": 1}], "edges": []},
//	  "pools": [{"procs": 1, "capacity": 8}, {"procs": 1, "capacity": 4}]
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8080", "listen address")
		cacheSize       = flag.Int("cache", 256, "maximum number of cached graph sessions (LRU)")
		maxInFlight     = flag.Int("max-inflight", 64, "maximum concurrently executing scheduling runs")
		maxBytes        = flag.Int64("max-request-bytes", 8<<20, "maximum request body size in bytes")
		maxRunTime      = flag.Duration("max-runtime", 30*time.Second, "hard cap on one scheduling run")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "memschedd: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewServer(serve.Config{
		Addr:            *addr,
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInFlight,
		MaxRequestBytes: *maxBytes,
		MaxRunTime:      *maxRunTime,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		ShutdownTimeout: *shutdownTimeout,
		Logf:            log.Printf,
	})
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("memschedd: %v", err)
	}
}
