// Command memschedd serves the memory-aware scheduling engines over
// HTTP/JSON (see package repro/serve for the endpoint reference). It caches
// warm scheduling sessions per graph, bounds concurrent runs, and shuts
// down gracefully on SIGINT/SIGTERM.
//
// With -router it runs as a cluster router instead (see package
// repro/cluster): no local engine, just consistent-hash routing of /v1
// traffic across a replica set by graph hash, with health-checked
// failover. Replica mode flags that configure the engine (-cache,
// -chaos-*, -shed-queue, -max-runtime) do not apply in router mode.
//
// Usage:
//
//	memschedd -addr 127.0.0.1:8080 -cache 256 -max-inflight 64
//	memschedd -addr 127.0.0.1:8081 -replica-id a   # one shard of a cluster
//	memschedd -addr 127.0.0.1:8080 \
//	  -router "a=http://127.0.0.1:8081,b=http://127.0.0.1:8082"
//
// Smoke test against a running daemon:
//
//	curl -s localhost:8080/v1/schedulers
//	curl -s -X POST localhost:8080/v1/schedule -d '{
//	  "graph": {"tasks": [{"wblue": 2, "wred": 1}], "edges": []},
//	  "pools": [{"procs": 1, "capacity": 8}, {"procs": 1, "capacity": 4}]
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/cluster"
	"repro/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8080", "listen address")
		cacheSize       = flag.Int("cache", 256, "maximum number of cached graph sessions (LRU)")
		maxInFlight     = flag.Int("max-inflight", 64, "maximum concurrently executing scheduling runs")
		maxBytes        = flag.Int64("max-request-bytes", 8<<20, "maximum request body size in bytes")
		maxRunTime      = flag.Duration("max-runtime", 30*time.Second, "hard cap on one scheduling run")
		rateLimit       = flag.Float64("rate-limit", 0, "token-bucket rate limit on /v1 endpoints in requests/sec (0 = off)")
		rateBurst       = flag.Int("rate-burst", 0, "token-bucket depth (0 = ceil(rate-limit))")
		shedQueue       = flag.Int("shed-queue", 0, "queue depth beyond which a saturated server sheds with 429 (0 = never shed)")
		chaosRate       = flag.Float64("chaos-rate", 0, "fault-injection probability per /v1 request, 0..1 (0 = off)")
		chaosSeed       = flag.Int64("chaos-seed", 0, "seed for the deterministic chaos PRNG")
		chaosLatency    = flag.Duration("chaos-max-latency", 25*time.Millisecond, "upper bound on one injected latency fault")
		chaosFaults     = flag.String("chaos-faults", "", "comma-separated fault kinds to inject: latency,error,truncate (empty = all)")
		readTimeout     = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout    = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain bound on shutdown")
		logLevel        = flag.String("log-level", "info", "structured log level: debug, info, warn, error, off")
		logFormat       = flag.String("log-format", "text", "structured log format: text or json")
		debugAddr       = flag.String("debug-addr", "", "optional second listener exposing /debug/pprof (and /debug/traces in replica mode); empty = off")
		traceKeep       = flag.Int("trace-keep", 8, "slowest request traces kept per route for /debug/traces (replica mode)")

		replicaID = flag.String("replica-id", "", "stable replica identity reported on /healthz (replica mode)")

		routerSpec     = flag.String("router", "", `run as a cluster router over this replica set ("id=url,..." or bare urls)`)
		vnodes         = flag.Int("vnodes", 160, "consistent-hash virtual nodes per replica (router mode)")
		loadFactor     = flag.Float64("load-factor", 1.25, "bounded-load factor: spill past an owner above this multiple of its fair share (router mode)")
		healthInterval = flag.Duration("health-interval", time.Second, "replica health-probe interval (router mode)")
		healthFail     = flag.Int("health-fail", 2, "consecutive failures before a replica is marked down (router mode)")
		healthRise     = flag.Int("health-rise", 2, "consecutive successes before a down replica is routable again (router mode)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "memschedd: unexpected arguments:", flag.Args())
		os.Exit(2)
	}
	logger := buildLogger(*logLevel, *logFormat)
	if *routerSpec != "" {
		// -max-inflight defaults are tuned for a CPU-bound replica; the
		// IO-bound router keeps its own (looser) default unless the flag
		// was set explicitly.
		inFlight := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "max-inflight" {
				inFlight = *maxInFlight
			}
		})
		runRouter(*routerSpec, routerConfig{
			addr: *addr, vnodes: *vnodes, loadFactor: *loadFactor,
			maxInFlight: inFlight, maxBytes: *maxBytes,
			rateLimit: *rateLimit, rateBurst: *rateBurst,
			healthInterval: *healthInterval, healthFail: *healthFail, healthRise: *healthRise,
			readTimeout: *readTimeout, writeTimeout: *writeTimeout, shutdownTimeout: *shutdownTimeout,
			logger: logger, debugAddr: *debugAddr,
		})
		return
	}
	var faults []string
	for _, f := range strings.Split(*chaosFaults, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		switch f {
		case serve.FaultLatency, serve.FaultError, serve.FaultTruncate:
			faults = append(faults, f)
		default:
			fmt.Fprintf(os.Stderr, "memschedd: unknown -chaos-faults kind %q (known: %s,%s,%s)\n",
				f, serve.FaultLatency, serve.FaultError, serve.FaultTruncate)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.NewServer(serve.Config{
		Addr:            *addr,
		ReplicaID:       *replicaID,
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInFlight,
		MaxRequestBytes: *maxBytes,
		MaxRunTime:      *maxRunTime,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
		ShedQueueDepth:  *shedQueue,
		ChaosRate:       *chaosRate,
		ChaosSeed:       *chaosSeed,
		ChaosMaxLatency: *chaosLatency,
		ChaosFaults:     faults,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		ShutdownTimeout: *shutdownTimeout,
		Logf:            log.Printf,
		Logger:          logger,
		TraceKeep:       *traceKeep,
	})
	serveDebug(ctx, *debugAddr, srv.TracesHandler())
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatalf("memschedd: %v", err)
	}
}

// buildLogger maps -log-level/-log-format onto a stderr slog.Logger.
// Level "off" discards everything (structured logging stays opt-out of
// the legacy Logf lifecycle lines).
func buildLogger(level, format string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return slog.New(slog.DiscardHandler)
	default:
		fmt.Fprintf(os.Stderr, "memschedd: unknown -log-level %q (known: debug, info, warn, error, off)\n", level)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts))
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	default:
		fmt.Fprintf(os.Stderr, "memschedd: unknown -log-format %q (known: text, json)\n", format)
		os.Exit(2)
		return nil
	}
}

// serveDebug runs the opt-in debug listener (-debug-addr): pprof plus,
// when traces is non-nil, /debug/traces. It serves until ctx ends and
// never blocks the main lifecycle.
func serveDebug(ctx context.Context, addr string, traces http.Handler) {
	if addr == "" {
		return
	}
	srv := &http.Server{Addr: addr, Handler: serve.NewDebugMux(traces)}
	go func() {
		<-ctx.Done()
		_ = srv.Close()
	}()
	go func() {
		log.Printf("memschedd: debug listener on %s", addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("memschedd: debug listener: %v", err)
		}
	}()
}

// routerConfig carries the flag values that apply in router mode.
type routerConfig struct {
	addr                      string
	vnodes                    int
	loadFactor                float64
	maxInFlight               int // 0 = the router's own default
	maxBytes                  int64
	rateLimit                 float64
	rateBurst                 int
	healthInterval            time.Duration
	healthFail, healthRise    int
	readTimeout, writeTimeout time.Duration
	shutdownTimeout           time.Duration
	logger                    *slog.Logger
	debugAddr                 string
}

// runRouter runs memschedd as a cluster router until SIGINT/SIGTERM.
func runRouter(spec string, rc routerConfig) {
	replicas, err := cluster.ParseReplicas(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memschedd:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt, err := cluster.NewRouter(cluster.Config{
		Addr:            rc.addr,
		Replicas:        replicas,
		VirtualNodes:    rc.vnodes,
		LoadFactor:      rc.loadFactor,
		MaxInFlight:     rc.maxInFlight,
		MaxRequestBytes: rc.maxBytes,
		RateLimit:       rc.rateLimit,
		RateBurst:       rc.rateBurst,
		Health: cluster.HealthConfig{
			Interval:  rc.healthInterval,
			FailAfter: rc.healthFail,
			RiseAfter: rc.healthRise,
			Logf:      log.Printf,
		},
		ReadTimeout:     rc.readTimeout,
		WriteTimeout:    rc.writeTimeout,
		ShutdownTimeout: rc.shutdownTimeout,
		Logf:            log.Printf,
		Logger:          rc.logger,
	})
	if err != nil {
		log.Fatalf("memschedd: %v", err)
	}
	// The router has no trace ring; its debug listener serves pprof only.
	serveDebug(ctx, rc.debugAddr, nil)
	if err := rt.ListenAndServe(ctx); err != nil {
		log.Fatalf("memschedd: %v", err)
	}
}
