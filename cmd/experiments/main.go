// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§6). Each figure is written as CSV (for plotting) and
// markdown (for reading) under the output directory.
//
// Usage:
//
//	experiments -fig all -scale quick -out results/
//	experiments -fig fig10 -scale full -seed 1 -out results/
//
// Figures: table1, fig10, fig11, fig12, fig13, fig14, fig15, all.
// -timeout bounds the whole campaign end to end through context
// cancellation, so long full-scale sweeps are interruptible.
// Scale "full" reproduces the paper's instance sizes (Fig. 12 then runs 100
// DAGs of 1000 tasks and takes tens of minutes); "quick" runs reduced
// instances in seconds while preserving the qualitative shapes.
//
// The sweeps execute on the parallel sweep engine (package repro/sweep) and
// use every core by default; -workers bounds the process's parallelism.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which figure to regenerate (table1, fig10..fig15, all)")
		scale   = flag.String("scale", "quick", "experiment scale: quick or full")
		seed    = flag.Int64("seed", 1, "base seed for workload generation")
		out     = flag.String("out", "results", "output directory")
		timeout = flag.Duration("timeout", 0, "interrupt the campaign after this duration (0 = none)")
		workers = flag.Int("workers", 0, "bound the sweep engine's parallelism (0 = all cores)")
	)
	flag.Parse()
	if *workers > 0 {
		// The sweep engine sizes its worker pools from GOMAXPROCS;
		// bounding it here bounds every sweep of the campaign.
		runtime.GOMAXPROCS(*workers)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *fig, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig, scaleName string, seed int64, out string) error {
	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleName)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	type job struct {
		name string
		run  func() error
	}
	jobs := []job{
		{"table1", func() error {
			t := experiments.Table1()
			// Re-label rows with kernel names in the markdown.
			md := &strings.Builder{}
			md.WriteString("| kernel | cpu-ms | gpu-ms |\n| --- | --- | --- |\n")
			for i, k := range experiments.Table1Kernels() {
				fmt.Fprintf(md, "| %s | %g | %g |\n", k, t.Rows[i].Values[0], t.Rows[i].Values[1])
			}
			return writeBoth(out, "table1", t.CSV(), md.String())
		}},
		{"fig10", func() error {
			res, err := experiments.Fig10(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeSweep(out, "fig10", res)
		}},
		{"fig11", func() error {
			t, err := experiments.Fig11(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "fig11", t.CSV(), t.Markdown())
		}},
		{"fig12", func() error {
			res, err := experiments.Fig12(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeSweep(out, "fig12", res)
		}},
		{"fig13", func() error {
			t, err := experiments.Fig13(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "fig13", t.CSV(), t.Markdown())
		}},
		{"fig14", func() error {
			t, err := experiments.Fig14(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "fig14", t.CSV(), t.Markdown())
		}},
		{"fig15", func() error {
			t, err := experiments.Fig15(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "fig15", t.CSV(), t.Markdown())
		}},
		// Extensions beyond the paper (DESIGN.md): ablations of the
		// processor policy, the online dispatcher, and the k-memory
		// generalisation.
		{"ext-insertion", func() error {
			t, err := experiments.ExtInsertion(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "ext-insertion", t.CSV(), t.Markdown())
		}},
		{"ext-online", func() error {
			t, err := experiments.ExtOnline(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "ext-online", t.CSV(), t.Markdown())
		}},
		{"ext-multipool", func() error {
			t, err := experiments.ExtMultiPool(ctx, scale, seed)
			if err != nil {
				return err
			}
			return writeBoth(out, "ext-multipool", t.CSV(), t.Markdown())
		}},
	}

	ran := 0
	for _, j := range jobs {
		if fig != "all" && fig != j.name {
			continue
		}
		start := time.Now()
		fmt.Printf("running %s (%s scale)...", j.name, scaleName)
		if err := j.run(); err != nil {
			fmt.Println()
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf(" done in %v\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown figure %q", fig)
	}
	fmt.Printf("results written to %s/\n", out)
	return nil
}

func writeBoth(dir, name, csv, md string) error {
	if err := os.WriteFile(filepath.Join(dir, name+".csv"), []byte(csv), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".md"), []byte(md), 0o644)
}

func writeSweep(dir, name string, res *experiments.SweepResult) error {
	if err := writeBoth(dir, name+"_makespan", res.Makespan.CSV(), res.Makespan.Markdown()); err != nil {
		return err
	}
	return writeBoth(dir, name+"_success", res.Success.CSV(), res.Success.Markdown())
}
