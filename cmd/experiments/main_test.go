package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	dir := t.TempDir()
	if err := run(tctx, "table1", "quick", 1, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []string{"getrf", "gemm", "trsm_l", "trsm_u", "potrf", "syrk"} {
		if !strings.Contains(string(data), kernel) {
			t.Fatalf("table1.md missing %s", kernel)
		}
	}
	if !strings.Contains(string(data), "450") || !strings.Contains(string(data), "1450") {
		t.Fatal("table1.md missing Table 1 values")
	}
}

func TestRunFig11Quick(t *testing.T) {
	dir := t.TempDir()
	if err := run(tctx, "fig11", "quick", 1, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig11.csv", "fig11.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
	}
	data, _ := os.ReadFile(filepath.Join(dir, "fig11.csv"))
	if !strings.HasPrefix(string(data), "memory,heft,minmin,memheft,memminmin,lowerbound") {
		t.Fatalf("fig11.csv header: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunFig12QuickWritesBothPanels(t *testing.T) {
	dir := t.TempDir()
	if err := run(tctx, "fig12", "quick", 1, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig12_makespan.csv", "fig12_success.csv", "fig12_makespan.md", "fig12_success.md"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s missing", name)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	dir := t.TempDir()
	if err := run(tctx, "table1", "enormous", 1, dir); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run(tctx, "fig99", "quick", 1, dir); err == nil {
		t.Fatal("bad figure accepted")
	}
}

func TestRunExtensionFigures(t *testing.T) {
	dir := t.TempDir()
	for _, fig := range []string{"ext-insertion", "ext-online", "ext-multipool"} {
		if err := run(tctx, fig, "quick", 1, dir); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if _, err := os.Stat(filepath.Join(dir, fig+".csv")); err != nil {
			t.Fatalf("%s output missing", fig)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick campaign")
	}
	dir := t.TempDir()
	if err := run(tctx, "all", "quick", 1, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 20 { // 10 jobs x >= 2 files each
		t.Fatalf("only %d result files", len(entries))
	}
}

// tctx is the shared background context of the package tests.
var tctx = context.Background()
