package memsched

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daggen"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// dualOf converts a facade 2-pool platform to the internal dual form for
// the reference oracles.
func dualOf(t *testing.T, p Platform) platform.Platform {
	t.Helper()
	dp, ok := p.Dual()
	if !ok {
		t.Fatal("not a 2-pool platform")
	}
	return dp
}

// sameDualSchedule compares placements and communication starts with exact
// float equality.
func sameDualSchedule(t *testing.T, tag string, got, want *schedule.Schedule) {
	t.Helper()
	if len(got.Tasks) != len(want.Tasks) {
		t.Fatalf("%s: %d task placements, want %d", tag, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if got.Tasks[i] != want.Tasks[i] {
			t.Fatalf("%s: task %d placed %+v, reference says %+v", tag, i, got.Tasks[i], want.Tasks[i])
		}
	}
	for i := range want.CommStart {
		g, w := got.CommStart[i], want.CommStart[i]
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Fatalf("%s: comm %d starts at %g, reference says %g", tag, i, g, w)
		}
	}
}

// TestSessionGoldenEquivalence sweeps memory pressures and asserts that
// Session.Schedule — the cached, session-owned path — produces schedules
// bit-identical to the retained naive reference oracles, for both
// heuristics, including identical failure classification.
func TestSessionGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	g, err := daggen.Generate(daggen.SmallParams(), 41)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	unbounded := NewDualPlatform(2, 2, Unlimited, Unlimited)
	ref, err := sess.Schedule(ctx, unbounded, WithScheduler("memheft"), WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	peaks := ref.PeakResidency()
	peak := peaks[0]
	if peaks[1] > peak {
		peak = peaks[1]
	}
	oracles := map[string]core.Func{
		"memheft":   core.MemHEFTReference,
		"memminmin": core.MemMinMinReference,
	}
	for _, alpha := range []float64{0.3, 0.5, 0.8, 1.0} {
		bound := int64(alpha * float64(peak))
		p := NewDualPlatform(2, 2, bound, bound)
		for name, oracle := range oracles {
			// Twice per instance: the second call is served from the
			// session's warm memos and must not diverge.
			for round := 0; round < 2; round++ {
				res, gotErr := sess.Schedule(ctx, p, WithScheduler(name), WithSeed(41))
				want, wantErr := oracle(ctx, g, dualOf(t, p), core.Options{Seed: 41})
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s alpha=%g: session err=%v, reference err=%v", name, alpha, gotErr, wantErr)
				}
				if gotErr != nil {
					if !errors.Is(gotErr, ErrMemoryBound) {
						t.Fatalf("%s alpha=%g: unexpected error kind %v", name, alpha, gotErr)
					}
					continue
				}
				sameDualSchedule(t, name, res.Schedule, want)
				if res.Stats.Makespan != want.Makespan() {
					t.Fatalf("%s: stats makespan %g, schedule says %g", name, res.Stats.Makespan, want.Makespan())
				}
			}
		}
	}
}

// TestSessionDualAsTwoPool checks the collapsed surface both ways: a
// pool-times session carrying the dual columns (forced through the
// generalised k-pool engine) must reproduce the dual engine's placements
// exactly on the same 2-pool platform.
func TestSessionDualAsTwoPool(t *testing.T) {
	ctx := context.Background()
	g, err := daggen.Generate(daggen.SmallParams(), 17)
	if err != nil {
		t.Fatal(err)
	}
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed}
	}
	dualSess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	poolSess, err := NewSession(g, WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []int64{40, 120, Unlimited} {
		p := NewDualPlatform(2, 2, bound, bound)
		for _, name := range []string{"memheft", "memminmin"} {
			dres, derr := dualSess.Schedule(ctx, p, WithScheduler(name), WithSeed(17))
			mres, merr := poolSess.Schedule(ctx, p, WithScheduler(name), WithSeed(17))
			if (derr == nil) != (merr == nil) {
				t.Fatalf("%s bound=%d: dual err=%v, pool err=%v", name, bound, derr, merr)
			}
			if derr != nil {
				if !errors.Is(derr, ErrMemoryBound) || !errors.Is(merr, ErrMemoryBound) {
					t.Fatalf("%s bound=%d: error kinds diverge: %v vs %v", name, bound, derr, merr)
				}
				continue
			}
			if dres.Schedule == nil || mres.Pools == nil {
				t.Fatalf("%s bound=%d: engine routing wrong: dual=%v pools=%v", name, bound, dres.Schedule != nil, mres.Pools != nil)
			}
			for i := range dres.Schedule.Tasks {
				dp, mp := dres.Schedule.Tasks[i], mres.Pools.Tasks[i]
				if dp.Start != mp.Start || dp.Proc != mp.Proc {
					t.Fatalf("%s bound=%d: task %d dual %+v vs pools %+v", name, bound, i, dp, mp)
				}
			}
			if err := mres.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentSessionsDifferentGraphs is the contention regression test
// for the deleted process-global caches: two sessions over two different
// graphs are hammered from many goroutines concurrently (run under -race),
// and every result must stay bit-identical to the single-threaded
// reference. With the old single-slot globals this pattern thrashed the
// slot and serialized on the package mutexes.
func TestConcurrentSessionsDifferentGraphs(t *testing.T) {
	ctx := context.Background()
	params := daggen.SmallParams()
	params.Size = 40
	g1, err := daggen.Generate(params, 100)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := daggen.Generate(params, 200)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, 300, 300)
	type fixture struct {
		sess *Session
		want map[string]*schedule.Schedule
		g    *Graph
	}
	fixtures := make([]fixture, 0, 2)
	for _, g := range []*Graph{g1, g2} {
		sess, err := NewSession(g)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]*schedule.Schedule{}
		for name, oracle := range map[string]core.Func{
			"memheft":   core.MemHEFTReference,
			"memminmin": core.MemMinMinReference,
		} {
			s, err := oracle(ctx, g, dualOf(t, p), core.Options{Seed: 9})
			if err != nil {
				t.Fatalf("reference %s: %v", name, err)
			}
			want[name] = s
		}
		fixtures = append(fixtures, fixture{sess: sess, want: want, g: g})
	}

	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fx := fixtures[(w+i)%len(fixtures)]
				name := "memheft"
				if (w+i)%4 >= 2 {
					name = "memminmin"
				}
				res, err := fx.sess.Schedule(ctx, p, WithScheduler(name), WithSeed(9))
				if err != nil {
					t.Errorf("goroutine %d: %v", w, err)
					return
				}
				got, want := res.Schedule, fx.want[name]
				for j := range want.Tasks {
					if got.Tasks[j] != want.Tasks[j] {
						t.Errorf("goroutine %d: %s task %d placed %+v, want %+v", w, name, j, got.Tasks[j], want.Tasks[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSchedulerRegistry covers the registry satellite: enumeration is
// sorted, resolution is case-insensitive, and errors list every registered
// name.
func TestSchedulerRegistry(t *testing.T) {
	names := Schedulers()
	if len(names) < 4 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("registry not sorted: %v", names)
		}
	}
	for _, variant := range []string{"memheft", "MemHEFT", "MEMHEFT", "  memheft "} {
		if _, err := SchedulerByName(variant); err != nil {
			t.Fatalf("SchedulerByName(%q): %v", variant, err)
		}
	}
	_, err := SchedulerByName("bogus")
	if err == nil {
		t.Fatal("bogus scheduler accepted")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("registry error %q does not list %q", err, name)
		}
	}
	// WithScheduler goes through the same registry.
	sess, err := NewSession(PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(1, 1, 10, 10)
	if _, err := sess.Schedule(context.Background(), p, WithScheduler("MemMinMin")); err != nil {
		t.Fatalf("case-insensitive WithScheduler: %v", err)
	}
	if _, err := sess.Schedule(context.Background(), p, WithScheduler("nope")); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestSessionContextCancellation checks cooperative cancellation end to
// end: an already-cancelled context interrupts Schedule and Simulate with
// the context error, and Optimal treats it as an exhausted budget.
func TestSessionContextCancellation(t *testing.T) {
	params := daggen.SmallParams()
	params.Size = 100
	g, err := daggen.Generate(params, 7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, Unlimited, Unlimited)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Schedule(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Schedule on cancelled ctx: err = %v", err)
	}
	if _, err := sess.Simulate(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("Simulate on cancelled ctx: err = %v", err)
	}
	// Optimal: cancellation behaves like an exhausted budget, not an
	// error; with no time at all the status cannot be proven.
	res, err := sess.Optimal(ctx, p, WithMaxNodes(1<<30))
	if err != nil {
		t.Fatalf("Optimal on cancelled ctx: %v", err)
	}
	if res.Stats.Proven {
		t.Fatal("cancelled Optimal claimed a proven result")
	}
	// WithTimeout wires the same mechanism without a caller context.
	res, err = sess.Optimal(context.Background(), p, WithTimeout(time.Nanosecond), WithMaxNodes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Proven {
		t.Fatal("nanosecond Optimal claimed a proven result")
	}
}

// TestSessionStats sanity-checks the structured stats: warm runs hit the
// candidate cache, wall time is recorded, and Optimal reports its node
// count.
func TestSessionStats(t *testing.T) {
	ctx := context.Background()
	g, err := daggen.Generate(daggen.SmallParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, 200, 200)
	res, err := sess.Schedule(ctx, p, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Scheduler != "memheft" {
		t.Fatalf("default scheduler recorded as %q", res.Stats.Scheduler)
	}
	if res.Stats.CacheHits+res.Stats.CacheMisses == 0 {
		t.Fatal("no candidate evaluations recorded")
	}
	if rate := res.Stats.CacheHitRate(); rate < 0 || rate > 1 {
		t.Fatalf("cache hit rate %g out of range", rate)
	}
	if res.Stats.WallTime <= 0 {
		t.Fatal("wall time not recorded")
	}
	if peaks := res.PeakResidency(); len(peaks) != 2 || (peaks[0] == 0 && peaks[1] == 0) {
		t.Fatalf("peak residency %v", peaks)
	}
	opt, err := sess.Optimal(ctx, NewDualPlatform(1, 1, 5, 5), WithMaxNodes(1000))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.Nodes <= 0 {
		t.Fatal("Optimal explored no nodes")
	}
	sim, err := sess.Simulate(ctx, p, WithPolicy(SimEFTPolicy))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Stats.Events <= 0 || sim.Stats.Scheduler != "sim-eft" {
		t.Fatalf("simulate stats: %+v", sim.Stats)
	}
}

// TestSessionKPoolRouting checks the platform-arity rules: dual sessions
// reject non-2-pool platforms, insertion requires the dual engine, and the
// deprecated flat API keeps working against 2-pool platforms while
// rejecting others.
func TestSessionKPoolRouting(t *testing.T) {
	ctx := context.Background()
	g := PaperExample()
	sess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	three := NewPlatform(Pool{Procs: 1, Capacity: 10}, Pool{Procs: 1, Capacity: 10}, Pool{Procs: 1, Capacity: 10})
	if _, err := sess.Schedule(ctx, three); err == nil {
		t.Fatal("dual session accepted a 3-pool platform")
	}
	if _, err := sess.Optimal(ctx, three); err == nil {
		t.Fatal("Optimal accepted a 3-pool platform")
	}
	if _, err := sess.Simulate(ctx, three); err == nil {
		t.Fatal("Simulate accepted a 3-pool platform")
	}
	p := NewDualPlatform(1, 1, 10, 10)
	if _, err := sess.Schedule(ctx, p, WithScheduler("memminmin"), WithInsertion()); err == nil {
		t.Fatal("WithInsertion accepted for memminmin")
	}
	res, err := sess.Schedule(ctx, p, WithInsertion())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Scheduler != "memheft-insertion" {
		t.Fatalf("insertion run recorded as %q", res.Stats.Scheduler)
	}
	// Deprecated flat API on the unified platform type.
	if _, err := MemHEFT(g, p, Options{Seed: 1}); err != nil {
		t.Fatalf("deprecated MemHEFT: %v", err)
	}
	if _, err := MemHEFT(g, three, Options{}); err == nil {
		t.Fatal("deprecated MemHEFT accepted a 3-pool platform")
	}
}

// TestSessionKPoolStats covers the k-pool stats surface added with the
// incremental engine: candidate-cache counters are reported, the warm
// second call hits the session memos, and PoolTasks accounts for every
// task.
func TestSessionKPoolStats(t *testing.T) {
	ctx := context.Background()
	params := daggen.SmallParams()
	params.Size = 40
	g, err := daggen.Generate(params, 23)
	if err != nil {
		t.Fatal(err)
	}
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed, (task.WBlue + task.WRed) / 2}
	}
	sess, err := NewSession(g, WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(
		Pool{Procs: 2, Capacity: Unlimited},
		Pool{Procs: 1, Capacity: Unlimited},
		Pool{Procs: 1, Capacity: Unlimited},
	)
	// MemMinMin's lazy heap invalidation re-serves every fresh (task, pool)
	// slot from the memo, so its hit rate must be strictly positive; on an
	// unconstrained platform MemHEFT commits the first ready task of every
	// scan, so only the counters' presence is asserted for it below.
	mres, err := sess.Schedule(ctx, p, WithScheduler("memminmin"), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if rate := mres.Stats.CacheHitRate(); rate <= 0 || rate > 1 {
		t.Fatalf("k-pool memminmin cache hit rate %g, want in (0, 1]", rate)
	}
	var prev *Result
	for round := 0; round < 2; round++ {
		res, err := sess.Schedule(ctx, p, WithScheduler("memheft"), WithSeed(23))
		if err != nil {
			t.Fatal(err)
		}
		if res.Pools == nil {
			t.Fatal("k-pool run did not produce a pool schedule")
		}
		if res.Stats.CacheHits+res.Stats.CacheMisses == 0 {
			t.Fatal("no candidate evaluations recorded")
		}
		if len(res.Stats.PoolTasks) != 3 {
			t.Fatalf("PoolTasks = %v, want 3 pools", res.Stats.PoolTasks)
		}
		sum := 0
		for _, n := range res.Stats.PoolTasks {
			sum += n
		}
		if sum != g.NumTasks() {
			t.Fatalf("PoolTasks %v sums to %d, want %d", res.Stats.PoolTasks, sum, g.NumTasks())
		}
		if res.Stats.Makespan != res.Pools.Makespan() {
			t.Fatalf("stats makespan %g, schedule says %g", res.Stats.Makespan, res.Pools.Makespan())
		}
		if peaks := res.PeakResidency(); len(peaks) != 3 {
			t.Fatalf("peak residency %v", peaks)
		}
		if prev != nil {
			for i := range prev.Pools.Tasks {
				if prev.Pools.Tasks[i] != res.Pools.Tasks[i] {
					t.Fatalf("warm round diverged at task %d", i)
				}
			}
		}
		prev = res
	}
}

// TestSessionForkWarmAndCold pins the fork contract after the copy-on-write
// redesign: warm forks (the default) and cold forks both produce schedules
// bit-identical to the parent's, a warm fork starts with the parent's memo
// content (its first call computes no priority list), and a warm fork
// diverging onto a new seed detaches without disturbing the parent.
func TestSessionForkWarmAndCold(t *testing.T) {
	ctx := context.Background()
	params := daggen.SmallParams()
	params.Size = 60
	g, err := daggen.Generate(params, 31)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.WarmUp(ctx, 31); err != nil {
		t.Fatal(err)
	}
	p := NewDualPlatform(2, 2, Unlimited, Unlimited)
	want, err := sess.Schedule(ctx, p, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	for name, fork := range map[string]*Session{
		"warm": sess.Fork(),
		"cold": sess.Fork(ForkCold()),
	} {
		got, err := fork.Schedule(ctx, p, WithSeed(31))
		if err != nil {
			t.Fatalf("%s fork: %v", name, err)
		}
		if len(got.Schedule.Tasks) != len(want.Schedule.Tasks) {
			t.Fatalf("%s fork: task count diverged", name)
		}
		for i := range want.Schedule.Tasks {
			if got.Schedule.Tasks[i] != want.Schedule.Tasks[i] {
				t.Fatalf("%s fork: task %d placed %+v, parent says %+v", name, i, got.Schedule.Tasks[i], want.Schedule.Tasks[i])
			}
		}
	}
	// A fork-of-fork still carries the frozen memos, and a divergent seed
	// schedules correctly (copy-on-write detach, parent untouched).
	grand := sess.Fork().Fork()
	div, err := grand.Schedule(ctx, p, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := div.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	again, err := sess.Schedule(ctx, p, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Schedule.Tasks {
		if again.Schedule.Tasks[i] != want.Schedule.Tasks[i] {
			t.Fatalf("parent diverged at task %d after fork detach", i)
		}
	}
}

// TestSessionKPoolCancellation mirrors the dual-path cancellation test for
// the generalised engine: an already-cancelled context interrupts a k-pool
// Schedule with the context error.
func TestSessionKPoolCancellation(t *testing.T) {
	params := daggen.SmallParams()
	params.Size = 60
	g, err := daggen.Generate(params, 13)
	if err != nil {
		t.Fatal(err)
	}
	times := make([][]float64, g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(TaskID(i))
		times[i] = []float64{task.WBlue, task.WRed, task.WRed + 2}
	}
	sess, err := NewSession(g, WithPoolTimes(times))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(
		Pool{Procs: 1, Capacity: Unlimited},
		Pool{Procs: 1, Capacity: Unlimited},
		Pool{Procs: 1, Capacity: Unlimited},
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"memheft", "memminmin"} {
		if _, err := sess.Schedule(ctx, p, WithScheduler(name)); !errors.Is(err, context.Canceled) {
			t.Fatalf("k-pool %s on cancelled ctx: err = %v", name, err)
		}
	}
}
