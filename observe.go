package memsched

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Phase is one timed interval of a scheduling call: an engine phase
// (ranking, statics, warm-start replay, the placement loop), the
// warm-start clone shortcut, Optimal's branch-and-bound search, or
// Simulate's dispatch loop. Start is the offset from the call's start;
// phases appear in completion order.
type Phase struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
}

// WithPhaseTrace returns a context under which Schedule, Optimal and
// Simulate attribute their wall time to phases: the returned Result's
// Stats.Phases carries the breakdown. Without it (the default) the
// engines skip all span bookkeeping, so untraced runs pay nothing
// beyond a context lookup per phase boundary. A nil ctx is treated as
// context.Background(); a context already carrying a recorder (for
// example one installed by the serving layer in package serve) is
// returned unchanged.
func WithPhaseTrace(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if trace.FromContext(ctx) != nil {
		return ctx
	}
	return trace.WithRecorder(ctx, trace.NewRecorder())
}

// phasesOf converts a call-local recorder's spans into the public Phase
// form carried on Stats.
func phasesOf(rec *trace.Recorder) []Phase {
	spans := rec.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]Phase, len(spans))
	for i, s := range spans {
		out[i] = Phase{Name: s.Name, Start: s.Start, Duration: s.Dur}
	}
	return out
}

// beginPhases sets up per-call phase capture when ctx already carries a
// recorder: the call gets a private child recorder (so concurrent calls
// — sweep workers share one request recorder — never interleave inside
// one Stats.Phases), and finish folds the child's spans back into the
// parent under the "engine/" prefix. With no recorder in ctx it returns
// ctx unchanged and nil.
func beginPhases(ctx context.Context) (context.Context, *trace.Recorder, func()) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		return ctx, nil, func() {}
	}
	child := trace.NewRecorder()
	return trace.WithRecorder(ctx, child), child, func() { parent.MergeAs("engine/", child) }
}
