package memsched

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/exact"
	"repro/internal/linalg"
	"repro/internal/multi"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Core model types.
type (
	// Graph is a task DAG with dual processing times and file-carrying
	// edges.
	Graph = dag.Graph
	// TaskID identifies a task within a Graph.
	TaskID = dag.TaskID
	// EdgeID identifies an edge within a Graph.
	EdgeID = dag.EdgeID
	// Task is a node of the graph.
	Task = dag.Task
	// Edge is a dependency carrying a file.
	Edge = dag.Edge

	// Pool is one memory with its attached identical processors.
	Pool = multi.Pool
	// Platform is an ordered list of memory pools — the one platform
	// abstraction of the package. The paper's dual-memory machine is its
	// 2-pool case (pool 0 blue/CPU-side, pool 1 red/accelerator-side):
	// build one with NewDualPlatform, or any pool count with NewPlatform.
	Platform = multi.Platform
	// Schedule is a complete mapping of a graph onto a dual-memory
	// platform, produced by the incremental dual engine.
	Schedule = schedule.Schedule
	// PoolSchedule is a schedule on a k-pool platform, produced by the
	// generalised engine.
	PoolSchedule = multi.Schedule
	// Instance couples a DAG with a per-pool Times[task][pool] matrix for
	// k-pool scheduling.
	Instance = multi.Instance
	// Memory identifies the blue or red memory of the dual model.
	Memory = platform.Memory

	// Options tunes a deprecated facade heuristic call (tie-break seed).
	// New code passes WithSeed to Session.Schedule instead.
	Options = core.Options
)

// Memories of the dual model.
const (
	Blue = platform.Blue
	Red  = platform.Red
)

// Unlimited is a memory capacity that never constrains a schedule.
const Unlimited = platform.Unlimited

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return dag.New() }

// ReadGraph decodes and validates a JSON graph from r.
func ReadGraph(r io.Reader) (*Graph, error) { return dag.Read(r) }

// GraphHash returns the canonical content hash of g (hex SHA-256 over tasks
// and sorted edges): equal-content graphs hash equally regardless of edge
// insertion order. It is the cache key of the scheduling service's session
// cache; Session.GraphHash returns the same value for plain dual sessions.
func GraphHash(g *Graph) string { return g.CanonicalHash() }

// NewPlatform builds a platform from memory pools; the pool order defines
// the global processor numbering.
func NewPlatform(pools ...Pool) Platform { return multi.NewPlatform(pools...) }

// NewDualPlatform builds the paper's dual-memory platform as its 2-pool
// case: pBlue processors sharing a blue memory of capacity mBlue (pool 0)
// and pRed processors sharing a red memory of capacity mRed (pool 1).
func NewDualPlatform(pBlue, pRed int, mBlue, mRed int64) Platform {
	return NewPlatform(Pool{Procs: pBlue, Capacity: mBlue}, Pool{Procs: pRed, Capacity: mRed})
}

// NewInstance couples a graph (structure, files, communication times) with
// a Times[task][pool] processing-time matrix for k-pool scheduling. Prefer
// NewSession with WithPoolTimes.
func NewInstance(g *Graph, times [][]float64) *Instance {
	return multi.NewInstance(g, times)
}

// ErrMemoryBound is returned (wrapped) when a memory-aware heuristic cannot
// schedule the graph within the platform's memory bounds — by both the dual
// and the k-pool engine.
var ErrMemoryBound = core.ErrMemoryBound

// LowerBound returns a makespan lower bound valid for every schedule of g
// on the 2-pool platform p (critical path and aggregate work arguments).
func LowerBound(g *Graph, p Platform) (float64, error) {
	dp, ok := p.Dual()
	if !ok {
		return 0, errDualOnly("LowerBound")
	}
	return exact.LowerBound(g, dp)
}

// Workload generators.

// RandomParams configures the DAGGEN-style random generator.
type RandomParams = daggen.Params

// SmallRandParams returns the paper's SmallRandSet parameters (30 tasks).
func SmallRandParams() RandomParams { return daggen.SmallParams() }

// LargeRandParams returns the paper's LargeRandSet parameters (1000 tasks).
func LargeRandParams() RandomParams { return daggen.LargeParams() }

// GenerateRandom builds one random DAG from params and seed.
func GenerateRandom(p RandomParams, seed int64) (*Graph, error) { return daggen.Generate(p, seed) }

// LinalgConfig configures the tiled factorisation graph builders.
type LinalgConfig = linalg.Config

// DefaultLinalgConfig returns the paper's configuration (Table 1 timings,
// 50 ms tile transfers, broadcast pipelines) for an n x n tiled matrix.
func DefaultLinalgConfig(n int) LinalgConfig { return linalg.DefaultConfig(n) }

// LUGraph builds the task graph of a tiled LU factorisation.
func LUGraph(cfg LinalgConfig) (*Graph, error) { return linalg.LU(cfg) }

// CholeskyGraph builds the task graph of a tiled Cholesky factorisation.
func CholeskyGraph(cfg LinalgConfig) (*Graph, error) { return linalg.Cholesky(cfg) }

// PaperExample returns the four-task toy DAG of Figure 2 of the paper.
func PaperExample() *Graph { return dag.PaperExample() }

// The experiment-harness re-exports (ResultTable, SweepResult, QuickScale,
// FullScale) moved out of this package when internal/experiments was
// rebuilt on top of the public sweep engine (package repro/sweep): the
// harness now imports this package, so the aliases would cycle. Import
// repro/internal/experiments from within this module, or use package sweep
// for the grid-evaluation shape; see docs/MIGRATION.md.

// Online runtime simulation (the StarPU-style integration the paper's
// conclusion proposes): scheduling decisions happen at runtime events with
// eager transfers and memory admission control. Run it with
// Session.Simulate.

// SimPolicy selects the online dispatch order.
type SimPolicy = sim.Policy

// Online dispatch policies.
const (
	// SimRankPolicy dispatches the highest-upward-rank admissible task
	// (HEFT-flavoured).
	SimRankPolicy = sim.RankPolicy
	// SimEFTPolicy dispatches the earliest-finishing admissible pair
	// (MinMin-flavoured).
	SimEFTPolicy = sim.EFTPolicy
)

// ErrSimStuck is returned (wrapped) when the online run deadlocks on memory.
var ErrSimStuck = sim.ErrStuck

// errDualOnly is the rejection for dual-only entry points fed a k-pool
// platform; errDualSessionOnly additionally demands a dual (non-pool-times)
// session. Both share one error identity.
func errDualOnly(what string) error {
	return &dualOnlyError{what: what}
}

func errDualSessionOnly(what string) error {
	return &dualOnlyError{what: what, needSession: true}
}

type dualOnlyError struct {
	what        string
	needSession bool
}

func (e *dualOnlyError) Error() string {
	if e.needSession {
		return "memsched: " + e.what + " requires a dual session on a 2-pool platform"
	}
	return "memsched: " + e.what + " requires a 2-pool (dual-memory) platform"
}

// ---------------------------------------------------------------------------
// Deprecated facade: the pre-Session flat API, kept as thin wrappers for one
// release. See docs/MIGRATION.md for the mapping.
// ---------------------------------------------------------------------------

// SchedulerFunc is the signature of the deprecated flat heuristic entry
// points. They accept any Platform but reject pool counts other than 2.
//
// Deprecated: create a Session and call Schedule with WithScheduler.
type SchedulerFunc = func(*Graph, Platform, Options) (*Schedule, error)

// wrapDual adapts a context-first dual-memory heuristic to the deprecated
// flat signature.
func wrapDual(fn core.Func) SchedulerFunc {
	return func(g *Graph, p Platform, opt Options) (*Schedule, error) {
		dp, ok := p.Dual()
		if !ok {
			return nil, errDualOnly("the flat scheduler API")
		}
		return fn(context.Background(), g, dp, opt)
	}
}

// Schedulers of the paper. HEFT and MinMin ignore the platform's memory
// bounds; MemHEFT and MemMinMin enforce them and return an error wrapping
// ErrMemoryBound when the graph does not fit. MemHEFTInsertion is the
// insertion-policy ablation of MemHEFT.
//
// Deprecated: create a Session and call Schedule with WithScheduler (and
// WithInsertion for the ablation). These wrappers carry no session memos:
// every call recomputes the priority list and graph statics, so hot loops
// (sweeps, services) should migrate to a Session to keep the cached cost.
var (
	HEFT             = wrapDual(core.HEFT)
	MinMin           = wrapDual(core.MinMin)
	MemHEFT          = wrapDual(core.MemHEFT)
	MemMinMin        = wrapDual(core.MemMinMin)
	MemHEFTInsertion = wrapDual(core.MemHEFTInsertion)
)

// SchedulerByName resolves a registered scheduler name (case-insensitive;
// see Schedulers for the registry) to the deprecated flat signature.
//
// Deprecated: pass WithScheduler(name) to Session.Schedule.
func SchedulerByName(name string) (SchedulerFunc, error) {
	fn, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	return wrapDual(fn), nil
}

// OptimalOptions bounds the effort of the deprecated Optimal wrapper.
//
// Deprecated: pass WithMaxNodes / WithTimeout to Session.Optimal.
type OptimalOptions struct {
	MaxNodes int           // 0 = the default node budget
	Timeout  time.Duration // 0 = unlimited
}

// Optimal runs the branch-and-bound search for the best list schedule of g
// on the 2-pool platform p. It returns the best schedule found and whether
// optimality (over the list-schedule space) was proven; a nil schedule with
// proven=true means the instance is infeasible for every list schedule.
//
// Deprecated: create a Session and call Optimal.
func Optimal(g *Graph, p Platform, opt OptimalOptions) (s *Schedule, proven bool, err error) {
	dp, ok := p.Dual()
	if !ok {
		return nil, false, errDualOnly("Optimal")
	}
	res, err := exact.Solve(context.Background(), g, dp, exact.Options{MaxNodes: opt.MaxNodes, Timeout: opt.Timeout})
	if err != nil {
		return nil, false, err
	}
	proven = res.Status == exact.Optimal || res.Status == exact.Infeasible
	return res.Schedule, proven, nil
}

// Simulate runs the online dispatcher for g on the 2-pool platform p and
// returns the emitted, validated schedule.
//
// Deprecated: create a Session and call Simulate with WithPolicy.
func Simulate(g *Graph, p Platform, policy SimPolicy, seed int64) (*Schedule, error) {
	dp, ok := p.Dual()
	if !ok {
		return nil, errDualOnly("Simulate")
	}
	res, err := sim.Run(context.Background(), g, dp, sim.Options{Policy: policy, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

// The parallel Multi* type system (MemoryPool, MultiPlatform, MultiInstance,
// MultiSchedule, MultiSchedulerFunc, NewMultiPlatform, NewMultiInstance,
// MultiMemHEFT, MultiMemMinMin, ErrMultiMemoryBound) that predated the
// unified pool surface has been removed after its deprecation release; see
// docs/MIGRATION.md for the one-line replacements on the Session API.

// DualInstance converts a dual-memory graph into a 2-pool instance (pool 0
// blue, pool 1 red); the generalised heuristics then reproduce MemHEFT /
// MemMinMin exactly.
func DualInstance(g *Graph) *Instance { return multi.FromDual(g) }
