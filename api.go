package memsched

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/daggen"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/multi"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Core model types.
type (
	// Graph is a task DAG with dual processing times and file-carrying
	// edges.
	Graph = dag.Graph
	// TaskID identifies a task within a Graph.
	TaskID = dag.TaskID
	// EdgeID identifies an edge within a Graph.
	EdgeID = dag.EdgeID
	// Task is a node of the graph.
	Task = dag.Task
	// Edge is a dependency carrying a file.
	Edge = dag.Edge
	// Platform describes the dual-memory machine.
	Platform = platform.Platform
	// Memory identifies the blue or red memory.
	Memory = platform.Memory
	// Schedule is a complete mapping of a graph onto a platform.
	Schedule = schedule.Schedule
	// Options tunes a heuristic run (tie-break seed).
	Options = core.Options
	// SchedulerFunc is the common signature of all schedulers.
	SchedulerFunc = core.Func
)

// Memories.
const (
	Blue = platform.Blue
	Red  = platform.Red
)

// Unlimited is a memory capacity that never constrains a schedule.
const Unlimited = platform.Unlimited

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return dag.New() }

// ReadGraph decodes and validates a JSON graph from r.
func ReadGraph(r io.Reader) (*Graph, error) { return dag.Read(r) }

// NewPlatform returns a platform with pBlue/pRed processors and the given
// memory capacities.
func NewPlatform(pBlue, pRed int, mBlue, mRed int64) Platform {
	return platform.New(pBlue, pRed, mBlue, mRed)
}

// Schedulers of the paper. HEFT and MinMin ignore the platform's memory
// bounds; MemHEFT and MemMinMin enforce them and return an error wrapping
// ErrMemoryBound when the graph does not fit.
var (
	HEFT      = core.HEFT
	MinMin    = core.MinMin
	MemHEFT   = core.MemHEFT
	MemMinMin = core.MemMinMin
)

// ErrMemoryBound is returned (wrapped) when a memory-aware heuristic cannot
// schedule the graph within the platform's memory bounds.
var ErrMemoryBound = core.ErrMemoryBound

// SchedulerByName resolves "heft", "minmin", "memheft" or "memminmin".
func SchedulerByName(name string) (SchedulerFunc, error) { return core.ByName(name) }

// LowerBound returns a makespan lower bound valid for every schedule of g
// on p (critical path and aggregate work arguments).
func LowerBound(g *Graph, p Platform) (float64, error) { return exact.LowerBound(g, p) }

// OptimalOptions bounds the effort of the exact search.
type OptimalOptions struct {
	MaxNodes int           // 0 = exact.DefaultMaxNodes
	Timeout  time.Duration // 0 = unlimited
}

// Optimal runs the branch-and-bound search for the best list schedule of g
// on p. It returns the best schedule found and whether optimality (over the
// list-schedule space) was proven; a nil schedule with proven=true means
// the instance is infeasible for every list schedule.
func Optimal(g *Graph, p Platform, opt OptimalOptions) (s *Schedule, proven bool, err error) {
	res, err := exact.Solve(g, p, exact.Options{MaxNodes: opt.MaxNodes, Timeout: opt.Timeout})
	if err != nil {
		return nil, false, err
	}
	proven = res.Status == exact.Optimal || res.Status == exact.Infeasible
	return res.Schedule, proven, nil
}

// Workload generators.

// RandomParams configures the DAGGEN-style random generator.
type RandomParams = daggen.Params

// SmallRandParams returns the paper's SmallRandSet parameters (30 tasks).
func SmallRandParams() RandomParams { return daggen.SmallParams() }

// LargeRandParams returns the paper's LargeRandSet parameters (1000 tasks).
func LargeRandParams() RandomParams { return daggen.LargeParams() }

// GenerateRandom builds one random DAG from params and seed.
func GenerateRandom(p RandomParams, seed int64) (*Graph, error) { return daggen.Generate(p, seed) }

// LinalgConfig configures the tiled factorisation graph builders.
type LinalgConfig = linalg.Config

// DefaultLinalgConfig returns the paper's configuration (Table 1 timings,
// 50 ms tile transfers, broadcast pipelines) for an n x n tiled matrix.
func DefaultLinalgConfig(n int) LinalgConfig { return linalg.DefaultConfig(n) }

// LUGraph builds the task graph of a tiled LU factorisation.
func LUGraph(cfg LinalgConfig) (*Graph, error) { return linalg.LU(cfg) }

// CholeskyGraph builds the task graph of a tiled Cholesky factorisation.
func CholeskyGraph(cfg LinalgConfig) (*Graph, error) { return linalg.Cholesky(cfg) }

// PaperExample returns the four-task toy DAG of Figure 2 of the paper.
func PaperExample() *Graph { return dag.PaperExample() }

// Experiment harness re-exports (see EXPERIMENTS.md for the mapping to the
// paper's figures and tables).
type (
	// ResultTable is a rendered experiment result (CSV / markdown).
	ResultTable = experiments.Table
	// SweepResult couples the makespan and success-rate panels of the
	// normalised-memory sweeps (Figures 10 and 12).
	SweepResult = experiments.SweepResult
)

// Experiment scales.
const (
	// QuickScale shrinks instance counts so a full campaign runs in
	// seconds.
	QuickScale = experiments.Quick
	// FullScale reproduces the paper's parameters exactly.
	FullScale = experiments.Full
)

// Multi-memory extension (the paper's §7 future work): platforms with any
// number of memory pools, each with its own processors and capacity.
type (
	// MemoryPool is one memory with its attached processors.
	MemoryPool = multi.Pool
	// MultiPlatform is an ordered list of memory pools.
	MultiPlatform = multi.Platform
	// MultiInstance couples a DAG with a per-pool timing matrix.
	MultiInstance = multi.Instance
	// MultiSchedule is a schedule on a multi-pool platform.
	MultiSchedule = multi.Schedule
	// MultiSchedulerFunc is the signature of the generalised heuristics
	// as exposed by this facade.
	MultiSchedulerFunc = func(*MultiInstance, MultiPlatform, Options) (*MultiSchedule, error)
)

// NewMultiPlatform builds a multi-pool platform.
func NewMultiPlatform(pools ...MemoryPool) MultiPlatform { return multi.NewPlatform(pools...) }

// NewMultiInstance couples a graph (structure, files, communication times)
// with a Times[task][pool] processing-time matrix.
func NewMultiInstance(g *Graph, times [][]float64) *MultiInstance {
	return multi.NewInstance(g, times)
}

// DualInstance converts a dual-memory graph into a 2-pool instance (pool 0
// blue, pool 1 red); the generalised heuristics then reproduce MemHEFT /
// MemMinMin exactly.
func DualInstance(g *Graph) *MultiInstance { return multi.FromDual(g) }

// Generalised schedulers for multi-pool platforms.
var (
	MultiMemHEFT = func(in *MultiInstance, p MultiPlatform, opt Options) (*MultiSchedule, error) {
		return multi.MemHEFT(in, p, multi.Options{Seed: opt.Seed})
	}
	MultiMemMinMin = func(in *MultiInstance, p MultiPlatform, opt Options) (*MultiSchedule, error) {
		return multi.MemMinMin(in, p, multi.Options{Seed: opt.Seed})
	}
)

// ErrMultiMemoryBound is the multi-pool counterpart of ErrMemoryBound.
var ErrMultiMemoryBound = multi.ErrMemoryBound

// MemHEFTInsertion runs MemHEFT with classical HEFT's insertion-based
// processor selection (idle gaps may be filled) instead of the paper's
// append policy — an ablation of Algorithm 1's processor-selection rule.
var MemHEFTInsertion = core.MemHEFTInsertion

// Online runtime simulation (the StarPU-style integration the paper's
// conclusion proposes): scheduling decisions happen at runtime events with
// eager transfers and memory admission control.

// SimPolicy selects the online dispatch order.
type SimPolicy = sim.Policy

// Online dispatch policies.
const (
	// SimRankPolicy dispatches the highest-upward-rank admissible task
	// (HEFT-flavoured).
	SimRankPolicy = sim.RankPolicy
	// SimEFTPolicy dispatches the earliest-finishing admissible pair
	// (MinMin-flavoured).
	SimEFTPolicy = sim.EFTPolicy
)

// ErrSimStuck is returned (wrapped) when the online run deadlocks on memory.
var ErrSimStuck = sim.ErrStuck

// Simulate runs the online dispatcher for g on p and returns the emitted,
// validated schedule.
func Simulate(g *Graph, p Platform, policy SimPolicy, seed int64) (*Schedule, error) {
	res, err := sim.Run(g, p, sim.Options{Policy: policy, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}
