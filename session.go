package memsched

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/multi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Session is the primary scheduling handle: it is created once for a task
// graph and owns every per-graph memo both engines use — the validated
// statics, the seeded priority lists and mean ranks, the candidate caches'
// inputs, and the k-pool engine's recycled scratch buffers. Those memos
// used to live in process-global single slots; a Session makes them
// per-graph, concurrency-safe and bounded by construction, so any number of
// goroutines can call Schedule concurrently on any number of sessions
// without contending.
//
// A Session built with NewSession carries the graph's dual (blue/red)
// processing times: scheduling it on a 2-pool platform runs the incremental
// dual-memory engine, while platforms with another pool count are rejected
// (the dual times define only two columns). A Session built with
// WithPoolTimes carries an explicit per-pool timing matrix and always runs
// the generalised k-pool engine.
type Session struct {
	g       *Graph
	times   [][]float64 // nil = dual times from the graph
	caches  *core.Caches
	mcaches *multi.Caches // k-pool memos: ranks, priority lists, statics, validation

	mu   sync.Mutex
	inst *multi.Instance // lazily built for the k-pool engine
	hash string          // lazily computed canonical content hash

	// Warm-start replay entries, keyed by (scheduler, seed): the committed
	// placement sequence (and resulting peaks) of the most recent successful
	// WithWarmStart run, replayed as a verified prefix by the next one when
	// the platform capacities did not grow. Stored entries are immutable.
	// Never shared with forks — each fork accumulates its own.
	warmMu    sync.Mutex
	warmDual  map[warmKey]*dualWarm
	warmMulti map[warmKey]*multiWarm
}

// SessionOption configures a Session at creation.
type SessionOption func(*Session) error

// WithPoolTimes supplies an explicit Times[task][pool] processing-time
// matrix, turning the session into a k-pool session: Schedule then always
// runs the generalised engine and the platform's pool count must match the
// matrix width. The graph's WBlue/WRed fields are ignored.
func WithPoolTimes(times [][]float64) SessionOption {
	return func(s *Session) error {
		if len(times) != s.g.NumTasks() {
			return fmt.Errorf("memsched: pool-time matrix has %d rows for %d tasks", len(times), s.g.NumTasks())
		}
		s.times = times
		return nil
	}
}

// NewSession validates g once and returns a scheduling session for it. The
// graph must not be mutated while the session is in use.
func NewSession(g *Graph, opts ...SessionOption) (*Session, error) {
	if g == nil {
		return nil, errors.New("memsched: nil graph")
	}
	s := &Session{g: g, caches: core.NewCaches(), mcaches: multi.NewCaches()}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if err := s.caches.Validate(g); err != nil {
		return nil, err
	}
	return s, nil
}

// Graph returns the session's task graph.
func (s *Session) Graph() *Graph { return s.g }

// ForkOption configures Session.Fork.
type ForkOption func(*forkConfig)

type forkConfig struct {
	cold bool
}

// ForkCold makes the fork start with empty memo caches instead of the
// copy-on-write view of the parent's. Use it to measure cold-cache cost or
// to shed a parent's memo footprint; schedules are identical either way.
func ForkCold() ForkOption {
	return func(c *forkConfig) { c.cold = true }
}

// Fork returns a new session scheduling the same (already validated) graph
// and pool times. By default the fork is born warm: it shares the parent's
// immutable memos — graph statics, validation results, mean ranks and a
// frozen snapshot of the seeded priority lists — behind copy-on-write
// wrappers, so its first Schedule call skips the ranking phase entirely
// while the first divergent write (a new seed, a re-keyed graph) detaches
// into private storage. Pass ForkCold for the old fresh-cache behaviour.
//
// Schedules produced by a fork are bit-identical to the parent's — the
// memos only cache pure functions of the graph — so forks exist for
// contention and warm-up: a worker that owns a fork never touches another
// worker's cache mutexes or recycled buffers. The sweep engine (package
// sweep) hands one warm fork to each of its workers. The graph hash and the
// lazily built k-pool instance are shared (both are immutable once
// computed); warm-start replay traces are not — each fork accumulates its
// own.
func (s *Session) Fork(opts ...ForkOption) *Session {
	var cfg forkConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	f := &Session{
		g:     s.g,
		times: s.times,
		hash:  s.GraphHash(), // memoize once, share the value
	}
	if cfg.cold {
		f.caches, f.mcaches = core.NewCaches(), multi.NewCaches()
	} else {
		f.caches, f.mcaches = s.caches.Fork(), s.mcaches.Fork()
	}
	s.mu.Lock()
	f.inst = s.inst // nil is fine: the fork rebuilds it lazily
	s.mu.Unlock()
	return f
}

// GraphHash returns the canonical content hash identifying what the session
// schedules: the graph's CanonicalHash (see GraphHash at package level),
// extended with a digest of the explicit pool-time matrix for WithPoolTimes
// sessions. Two sessions with equal hashes produce identical schedules for
// identical calls, which makes the hash the natural key for caching sessions
// across requests — the scheduling service in package serve does exactly
// that. The hash is computed once and memoized.
func (s *Session) GraphHash() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hash == "" {
		s.hash = s.g.CanonicalHash()
		if s.times != nil {
			h := sha256.New()
			h.Write([]byte(s.hash))
			var buf [8]byte
			for _, row := range s.times {
				for _, w := range row {
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
					h.Write(buf[:])
				}
				binary.LittleEndian.PutUint64(buf[:], ^uint64(0)) // row separator
				h.Write(buf[:])
			}
			s.hash = hex.EncodeToString(h.Sum(nil))
		}
	}
	return s.hash
}

// instance returns (building lazily) the multi-pool instance of the
// session: the explicit pool times, or the dual columns of the graph.
func (s *Session) instance() *multi.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inst == nil {
		if s.times != nil {
			s.inst = multi.NewInstance(s.g, s.times)
		} else {
			s.inst = multi.FromDual(s.g)
		}
	}
	return s.inst
}

// scheduleConfig collects the functional options of one scheduling call.
type scheduleConfig struct {
	seed      int64
	scheduler string
	insertion bool
	warmStart bool
	policy    SimPolicy
	timeout   time.Duration
	maxNodes  int
	incumbent *Schedule
}

// ScheduleOption tunes one Schedule, Optimal or Simulate call.
type ScheduleOption func(*scheduleConfig)

// WithSeed sets the tie-breaking seed of the priority phase (runs with
// equal seeds are reproducible). The default is 0.
func WithSeed(seed int64) ScheduleOption {
	return func(c *scheduleConfig) { c.seed = seed }
}

// WithScheduler selects a registered heuristic by name (case-insensitive;
// see Schedulers). The default is "memheft".
func WithScheduler(name string) ScheduleOption {
	return func(c *scheduleConfig) { c.scheduler = name }
}

// WithInsertion switches MemHEFT's processor selection to classical HEFT's
// insertion-based policy (idle gaps may be filled) instead of the paper's
// append policy. Only valid with the "memheft" scheduler on a dual session.
func WithInsertion() ScheduleOption {
	return func(c *scheduleConfig) { c.insertion = true }
}

// WithWarmStart enables capacity-delta replay for Schedule: the call
// records its committed placement sequence under the (scheduler, seed) key,
// and the next warm-started call with the same key replays the recorded
// prefix — each step verified against the live state, so the result stays
// bit-identical to a from-scratch run — as long as no pool capacity grew
// (see ReplayEligible), falling back to normal scheduling at the first
// divergence. Stats.ReplayedPlacements and Stats.ReplayTruncated report
// what replay did. Supported by the memheft, memminmin, heft and minmin
// schedulers (silently inert elsewhere, including WithInsertion). The
// default is off; the sweep engine turns it on along its capacity-ordered
// point chains.
func WithWarmStart(on bool) ScheduleOption {
	return func(c *scheduleConfig) { c.warmStart = on }
}

// WithPolicy selects the online dispatch policy of Simulate (ignored by
// Schedule and Optimal). The default is SimRankPolicy.
func WithPolicy(p SimPolicy) ScheduleOption {
	return func(c *scheduleConfig) { c.policy = p }
}

// WithTimeout is a convenience wrapper around context cancellation: the
// call derives a context.WithTimeout from its context. For Optimal it
// bounds the search like an exhausted node budget (best incumbent is
// reported); for Schedule and Simulate expiry interrupts the run with an
// error wrapping context.DeadlineExceeded.
func WithTimeout(d time.Duration) ScheduleOption {
	return func(c *scheduleConfig) { c.timeout = d }
}

// WithMaxNodes bounds the node budget of Optimal's branch-and-bound search
// (0 means the default budget). Ignored by Schedule and Simulate.
func WithMaxNodes(n int) ScheduleOption {
	return func(c *scheduleConfig) { c.maxNodes = n }
}

// WithIncumbent seeds Optimal's branch-and-bound search with a known-valid
// schedule (typically the best heuristic result for the same platform): the
// search starts with its makespan as the upper bound, prunes against it
// immediately, and reports it back when the node or time budget exhausts
// before anything better is found. Ignored by Schedule and Simulate.
func WithIncumbent(s *Schedule) ScheduleOption {
	return func(c *scheduleConfig) { c.incumbent = s }
}

// newScheduleConfig applies opts over the defaults.
func newScheduleConfig(opts []ScheduleOption) scheduleConfig {
	cfg := scheduleConfig{scheduler: "memheft"}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.scheduler = strings.ToLower(strings.TrimSpace(cfg.scheduler))
	return cfg
}

// withTimeout wraps ctx with cfg.timeout when set (nil ctx = background).
func (cfg scheduleConfig) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		return context.WithTimeout(ctx, cfg.timeout)
	}
	return ctx, func() {}
}

// Stats carries the structured statistics of one scheduling call.
type Stats struct {
	// Scheduler is the registry name of the heuristic that ran ("optimal"
	// for the exact search, "sim-rank"/"sim-eft" for the simulator).
	Scheduler string
	// Makespan of the produced schedule (+Inf when none was produced).
	Makespan float64
	// CacheHits / CacheMisses count candidate evaluations served from the
	// epoch-invalidated memo vs recomputed, by whichever engine ran (the
	// dual engine memoizes per (task, memory), the k-pool engine per
	// (task, pool)).
	CacheHits, CacheMisses uint64
	// PoolTasks is the number of tasks committed to each pool, in pool
	// order (k-pool engine only; nil on the dual path).
	PoolTasks []int
	// ReplayedPlacements is the number of placements committed by verified
	// trace replay instead of full candidate evaluation (WithWarmStart
	// runs; 0 without a usable trace).
	ReplayedPlacements int
	// ReplayTruncated reports that a replay attempt stopped before
	// exhausting its trace — a recorded decision turned infeasible or
	// suboptimal under the new capacities and the engine re-derived the
	// suffix from scratch. False when no trace was replayed at all.
	ReplayTruncated bool
	// Nodes is the number of branch-and-bound nodes explored (Optimal).
	Nodes int
	// Proven reports whether Optimal proved optimality (or infeasibility)
	// over the list-schedule space.
	Proven bool
	// Events is the number of dispatcher invocations (Simulate).
	Events int
	// WallTime is the end-to-end duration of the call.
	WallTime time.Duration
	// Phases is the call's span timeline — ranking, statics, warm-start
	// replay, the placement loop (plus clone/search/dispatch on the
	// shortcut, Optimal and Simulate paths) — populated only when the
	// call's context carries a trace recorder (WithPhaseTrace, or the
	// per-request recorder installed by the serving layer). Offsets are
	// relative to the call's start; nil when tracing is off.
	Phases []Phase
}

// CacheHitRate returns the fraction of candidate evaluations served from
// the memo (0 when nothing was evaluated).
func (st Stats) CacheHitRate() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// Result couples the schedule produced by a session call with its
// statistics. Exactly one of Schedule and Pools is set: Schedule on the
// dual-memory fast path (2-pool platform, dual session), Pools when the
// generalised k-pool engine ran. The accessor methods dispatch to
// whichever is present.
type Result struct {
	// Schedule is the dual-memory schedule (nil on the k-pool path, and
	// nil when Optimal proves infeasibility).
	Schedule *Schedule
	// Pools is the generalised k-pool schedule (nil on the dual path).
	Pools *PoolSchedule
	// Stats are the structured statistics of the call.
	Stats Stats

	peaksOnce sync.Once
	peaks     []int64
}

// Makespan returns the schedule's makespan (+Inf when the result carries no
// schedule).
func (r *Result) Makespan() float64 { return r.Stats.Makespan }

// PeakResidency returns the peak memory residency of every pool (blue then
// red on the dual path). It is computed on first use and cached — except on
// successful WithWarmStart calls, which compute it eagerly so a warm-start
// chain can carry the peaks of fully replayed (hence bit-identical)
// schedules forward instead of rescanning every residency. Nil when the
// result carries no schedule.
func (r *Result) PeakResidency() []int64 {
	r.peaksOnce.Do(func() {
		if r.peaks != nil {
			return // pre-seeded by a warm-start Schedule call
		}
		switch {
		case r.Schedule != nil:
			blue, red := r.Schedule.MemoryPeaks()
			r.peaks = []int64{blue, red}
		case r.Pools != nil:
			r.peaks = r.Pools.MemoryPeaks()
		}
	})
	return r.peaks
}

// Validate re-checks every model constraint on the carried schedule.
func (r *Result) Validate() error {
	switch {
	case r.Schedule != nil:
		return r.Schedule.Validate()
	case r.Pools != nil:
		return r.Pools.Validate()
	}
	return errors.New("memsched: result carries no schedule")
}

// Schedule runs a list-scheduling heuristic for the session's graph on p
// and returns the schedule with statistics. The heuristic defaults to
// MemHEFT; select another with WithScheduler (see Schedulers for the
// registry). Dual sessions on 2-pool platforms run the incremental
// dual-memory engine; k-pool sessions run the generalised engine. The
// context cancels the run cooperatively; heuristics that cannot fit the
// graph in memory return an error wrapping ErrMemoryBound.
//
// Schedule is safe for concurrent use, including concurrent calls on the
// same session.
func (s *Session) Schedule(ctx context.Context, p Platform, opts ...ScheduleOption) (*Result, error) {
	cfg := newScheduleConfig(opts)
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	ctx, phaseRec, finishPhases := beginPhases(ctx)
	defer finishPhases()
	start := time.Now()

	if dp, ok := p.Dual(); ok && s.times == nil {
		fn, err := core.ByName(cfg.scheduler)
		if err != nil {
			return nil, err
		}
		name := cfg.scheduler
		if cfg.insertion {
			if name != "memheft" {
				return nil, fmt.Errorf("memsched: WithInsertion requires the memheft scheduler, got %q", cfg.scheduler)
			}
			fn, name = core.MemHEFTInsertion, "memheft-insertion"
		}
		var rs core.RunStats
		copt := core.Options{Seed: cfg.seed, Caches: s.caches, Stats: &rs}
		var key warmKey
		var rec *core.Trace
		var prev *dualWarm
		if cfg.warmStart && !cfg.insertion && ReplayableScheduler(name) {
			key = warmKey{scheduler: name, seed: cfg.seed}
			// heft/minmin run on the engine-effective unbounded platform
			// and record their traces against it.
			eff := dp
			if name == "heft" || name == "minmin" {
				eff = dp.Unbounded()
			}
			if prev = s.dualWarmEntry(key); prev != nil {
				if prev.trace.FullReplayOn(eff) {
					// Margin shortcut: the recorded fit slacks prove every
					// step of the trace replays verbatim on eff, so the run
					// would reproduce the stored schedule bit for bit —
					// return a clone of it without running the engine. The
					// stored entry stays anchored at its recording platform,
					// keeping the margins exact for the rest of the chain.
					endClone := trace.Start(ctx, "clone")
					sched := prev.sched.Clone()
					sched.Platform = eff
					endClone()
					res := &Result{
						Schedule: sched,
						Stats: Stats{
							Scheduler:          name,
							Makespan:           prev.makespan,
							ReplayedPlacements: len(prev.trace.Cands),
							WallTime:           time.Since(start),
						},
					}
					if phaseRec != nil {
						res.Stats.Phases = phasesOf(phaseRec)
					}
					res.peaks = append([]int64(nil), prev.peaks...)
					return res, nil
				}
				copt.Replay = prev.trace
			}
			rec = &core.Trace{Cands: make([]core.Candidate, 0, s.g.NumTasks())}
			copt.Record = rec
		}
		sched, err := fn(ctx, s.g, dp, copt)
		if err != nil {
			return nil, err
		}
		res := &Result{
			Schedule: sched,
			Stats: Stats{
				Scheduler:          name,
				Makespan:           rs.Makespan,
				CacheHits:          rs.CacheHits,
				CacheMisses:        rs.CacheMisses,
				ReplayedPlacements: rs.Replayed,
				ReplayTruncated:    rs.ReplayTruncated,
				WallTime:           time.Since(start),
			},
		}
		if phaseRec != nil {
			res.Stats.Phases = phasesOf(phaseRec)
		}
		if rec != nil && rec.Complete {
			// A replay that consumed the whole (complete) trace produced a
			// schedule bit-identical to the recorded one, so its peaks carry
			// over; otherwise compute them once here, serving both this
			// result's PeakResidency and the next replay in the chain.
			var peaks []int64
			if prev != nil && prev.trace.Complete && rs.Replayed == len(prev.trace.Cands) {
				peaks = prev.peaks
			} else {
				blue, red := sched.MemoryPeaks()
				peaks = []int64{blue, red}
			}
			s.putDualWarm(key, rec, sched, rs.Makespan, peaks)
			res.peaks = append([]int64(nil), peaks...)
		}
		return res, nil
	}

	if cfg.insertion {
		return nil, errDualSessionOnly("WithInsertion")
	}
	in := s.instance()
	var (
		msched *PoolSchedule
		rs     multi.RunStats
		err    error
	)
	mopt := multi.Options{Seed: cfg.seed, Caches: s.mcaches, Stats: &rs}
	var key warmKey
	var rec *multi.Trace
	var prev *multiWarm
	if cfg.warmStart && ReplayableScheduler(cfg.scheduler) {
		key = warmKey{scheduler: cfg.scheduler, seed: cfg.seed}
		// heft/minmin run on the engine-effective unbounded platform and
		// record their traces against it.
		eff := p
		if cfg.scheduler == "heft" || cfg.scheduler == "minmin" {
			eff = p.Unbounded()
		}
		if prev = s.multiWarmEntry(key); prev != nil {
			if prev.trace.FullReplayOn(eff) {
				// Margin shortcut — see the dual path above.
				endClone := trace.Start(ctx, "clone")
				sched := prev.sched.Clone()
				sched.Platform = eff
				endClone()
				res := &Result{
					Pools: sched,
					Stats: Stats{
						Scheduler:          cfg.scheduler,
						Makespan:           prev.makespan,
						PoolTasks:          append([]int(nil), prev.poolTasks...),
						ReplayedPlacements: len(prev.trace.Cands),
						WallTime:           time.Since(start),
					},
				}
				if phaseRec != nil {
					res.Stats.Phases = phasesOf(phaseRec)
				}
				res.peaks = append([]int64(nil), prev.peaks...)
				return res, nil
			}
			mopt.Replay = prev.trace
		}
		rec = &multi.Trace{Cands: make([]multi.Candidate, 0, s.g.NumTasks())}
		mopt.Record = rec
	}
	switch cfg.scheduler {
	case "memheft":
		msched, err = multi.MemHEFT(ctx, in, p, mopt)
	case "memminmin":
		msched, err = multi.MemMinMin(ctx, in, p, mopt)
	case "heft":
		msched, err = multi.MemHEFT(ctx, in, p.Unbounded(), mopt)
	case "minmin":
		msched, err = multi.MemMinMin(ctx, in, p.Unbounded(), mopt)
	default:
		if _, nerr := core.ByName(cfg.scheduler); nerr != nil {
			return nil, nerr
		}
		return nil, fmt.Errorf("memsched: scheduler %q is not available on k-pool platforms", cfg.scheduler)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Pools: msched,
		Stats: Stats{
			Scheduler:          cfg.scheduler,
			Makespan:           rs.Makespan,
			CacheHits:          rs.CacheHits,
			CacheMisses:        rs.CacheMisses,
			PoolTasks:          rs.PoolTasks,
			ReplayedPlacements: rs.Replayed,
			ReplayTruncated:    rs.ReplayTruncated,
			WallTime:           time.Since(start),
		},
	}
	if phaseRec != nil {
		res.Stats.Phases = phasesOf(phaseRec)
	}
	if rec != nil && rec.Complete {
		// Same peak carry-over as the dual path: a full replay of a
		// complete trace reproduced the recorded schedule bit for bit.
		var peaks []int64
		if prev != nil && prev.trace.Complete && rs.Replayed == len(prev.trace.Cands) {
			peaks = prev.peaks
		} else {
			peaks = msched.MemoryPeaks()
		}
		s.putMultiWarm(key, rec, msched, rs.Makespan, rs.PoolTasks, peaks)
		res.peaks = append([]int64(nil), peaks...)
	}
	return res, nil
}

// Optimal runs the branch-and-bound search for the best list schedule of
// the session's graph on p. It requires a dual session and a 2-pool
// platform. The result's Stats report the nodes explored and whether
// optimality (over the list-schedule space) was proven; a nil
// Result.Schedule with Stats.Proven means the instance is infeasible for
// every list schedule. Cancelling the context (or WithTimeout expiring)
// stops the search and reports the best incumbent, like an exhausted
// WithMaxNodes budget.
func (s *Session) Optimal(ctx context.Context, p Platform, opts ...ScheduleOption) (*Result, error) {
	cfg := newScheduleConfig(opts)
	dp, ok := p.Dual()
	if !ok || s.times != nil {
		return nil, errDualSessionOnly("Optimal")
	}
	ctx, phaseRec, finishPhases := beginPhases(ctx)
	defer finishPhases()
	start := time.Now()
	endSearch := trace.Start(ctx, "search")
	res, err := exact.Solve(ctx, s.g, dp, exact.Options{
		MaxNodes:  cfg.maxNodes,
		Timeout:   cfg.timeout,
		Incumbent: cfg.incumbent,
		Caches:    s.caches,
	})
	endSearch()
	if err != nil {
		return nil, err
	}
	out := &Result{
		Schedule: res.Schedule,
		Stats: Stats{
			Scheduler: "optimal",
			Makespan:  res.Makespan,
			Nodes:     res.Nodes,
			Proven:    res.Status == exact.Optimal || res.Status == exact.Infeasible,
			WallTime:  time.Since(start),
		},
	}
	if phaseRec != nil {
		out.Stats.Phases = phasesOf(phaseRec)
	}
	return out, nil
}

// Simulate runs the online StarPU-style dispatcher for the session's graph
// on p (dual sessions on 2-pool platforms only) and returns the emitted,
// validated schedule. Select the dispatch order with WithPolicy; a
// deadlocked run returns an error wrapping ErrSimStuck.
func (s *Session) Simulate(ctx context.Context, p Platform, opts ...ScheduleOption) (*Result, error) {
	cfg := newScheduleConfig(opts)
	dp, ok := p.Dual()
	if !ok || s.times != nil {
		return nil, errDualSessionOnly("Simulate")
	}
	ctx, cancel := cfg.withTimeout(ctx)
	defer cancel()
	ctx, phaseRec, finishPhases := beginPhases(ctx)
	defer finishPhases()
	start := time.Now()
	endDispatch := trace.Start(ctx, "dispatch")
	res, err := sim.Run(ctx, s.g, dp, sim.Options{Policy: cfg.policy, Seed: cfg.seed})
	endDispatch()
	if err != nil {
		return nil, err
	}
	out := &Result{
		Schedule: res.Schedule,
		Stats: Stats{
			Scheduler: "sim-" + cfg.policy.String(),
			Makespan:  res.Schedule.Makespan(),
			Events:    res.Events,
			WallTime:  time.Since(start),
		},
	}
	if phaseRec != nil {
		out.Stats.Phases = phasesOf(phaseRec)
	}
	return out, nil
}

// LowerBound returns a makespan lower bound valid for every schedule of the
// session's graph on p (critical path and aggregate work arguments). It
// requires a dual session and a 2-pool platform: the bound is derived from
// the graph's dual processing times, which a WithPoolTimes session ignores.
func (s *Session) LowerBound(p Platform) (float64, error) {
	dp, ok := p.Dual()
	if !ok || s.times != nil {
		return 0, errDualSessionOnly("LowerBound")
	}
	return exact.LowerBound(s.g, dp)
}

// Schedulers returns the names registered with the scheduler registry,
// sorted; WithScheduler and SchedulerByName accept any of them
// (case-insensitively).
func Schedulers() []string { return core.Names() }
