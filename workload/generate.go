package workload

import (
	"math"
	"sort"
	"time"
)

// Generate expands a validated Spec into a Trace under the given seed.
//
// Determinism contract: the same (Spec, seed) pair yields the same Trace —
// and therefore a byte-identical EncodeTrace — on every run and platform.
// Three rules keep that true:
//
//  1. Each class samples from its own splitmix64 stream (newRNG(seed, i)),
//     so classes never interleave draws and adding a class cannot shift
//     another class's sequence.
//  2. Within a class the draw order per event is fixed: inter-arrival,
//     then kind, then graph — always all three, even when the mix is
//     degenerate — so the stream position after event n is a function of
//     n alone.
//  3. Arrival offsets accumulate in integer microseconds (the trace wire
//     unit), never in floats, so re-encoding cannot round differently.
//
// The per-class event lists are merged by (At, Class) into a single
// non-decreasing timeline.
func Generate(spec *Spec, seed int64) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	horizonUS := int64(math.Round(spec.DurationSeconds * 1e6))
	bound := spec.eventBound()

	var events []Event
	classes := make([]TraceClass, len(spec.Classes))
	for ci, c := range spec.Classes {
		alphas := c.SweepAlphas
		if alphas == 0 {
			alphas = 4
		}
		classes[ci] = TraceClass{Name: c.Name, SLOMillis: c.SLOMillis, SweepAlphas: alphas}

		r := newRNG(seed, uint64(ci))
		pSched, pSim := c.Mix.normalized()
		zipf := newZipfPicker(spec.Catalog.Graphs, c.Zipf)

		var t int64 // microseconds since trace start
		for {
			dt := interArrival(r, c.Arrival)
			// Clamp to >= 1µs: two events of one class never share a
			// timestamp, which keeps the (At, Class) merge a total order.
			dus := int64(math.Round(dt * 1e6))
			if dus < 1 {
				dus = 1
			}
			t += dus
			if t > horizonUS {
				break
			}
			// Fixed draw order: kind then graph, both drawn every event.
			u := r.Float64()
			kind := KindSweep
			switch {
			case u < pSched:
				kind = KindSchedule
			case u < pSim:
				kind = KindSimulate
			}
			graph := zipf.pick(r)
			events = append(events, Event{
				At:    time.Duration(t) * time.Microsecond,
				Class: ci,
				Kind:  kind,
				Graph: graph,
			})
			if len(events) > bound {
				return nil, &SpecError{"duration_s", "generated trace exceeds the event bound; shorten the spec or lower the rates"}
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Class < events[j].Class
	})

	set, err := spec.Catalog.Build()
	if err != nil {
		return nil, err
	}
	graphs := make([]TraceGraph, len(set.Hashes))
	for i, h := range set.Hashes {
		graphs[i] = TraceGraph{Hash: h}
	}

	return &Trace{
		Version:  TraceVersion,
		Seed:     seed,
		SpecHash: spec.Hash(),
		Duration: time.Duration(horizonUS) * time.Microsecond,
		Catalog:  spec.Catalog,
		Classes:  classes,
		Graphs:   graphs,
		Events:   events,
	}, nil
}

// interArrival draws one inter-arrival gap in seconds with mean 1/Rate.
// The gamma and weibull variates are rescaled to unit mean before dividing
// by the rate, so Shape tunes burstiness without changing the mean rate.
func interArrival(r *rng, a Arrival) float64 {
	switch a.Process {
	case ProcessGamma:
		// Gamma(k, 1) has mean k; Gamma(k)/k is unit-mean.
		return r.Gamma(a.Shape) / a.Shape / a.Rate
	case ProcessWeibull:
		// Weibull(k, 1) has mean Γ(1 + 1/k).
		return r.Weibull(a.Shape) / math.Gamma(1+1/a.Shape) / a.Rate
	default: // ProcessPoisson — Validate guarantees the set is closed
		return r.Exp() / a.Rate
	}
}

// zipfPicker draws catalog indices with popularity weight (i+1)^-s via a
// precomputed cumulative table and binary search — one uniform per draw,
// regardless of skew (a rejection sampler's variable draw count would break
// the fixed-draw-order contract).
type zipfPicker struct {
	cum []float64 // cum[i] = Σ_{j<=i} (j+1)^-s, normalised to cum[n-1] = 1
}

func newZipfPicker(n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(r *rng) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}
