// Package workload models open-loop traffic against the scheduling service:
// declarative multi-class workload specs, a seeded deterministic generator
// that expands a Spec into a replayable event Trace, and a Report aggregating
// per-class latency, goodput and fairness.
//
// The pipeline is
//
//	Spec ──Generate(seed)──▶ Trace ──┬── cmd/schedload -spec   (live daemon or cluster)
//	                                 └── clustersim.Run        (discrete-event simulator)
//	outcomes ──NewReport──▶ Report   (per-class p50/p99, goodput, Jain fairness)
//
// A Spec describes client classes with open-loop arrival processes (Poisson,
// Gamma or Weibull inter-arrivals — the last two model bursty traffic with a
// shape below 1), a Zipf popularity skew over a generated graph catalog (the
// skew is what makes the service's LRU session cache interesting), a request
// mix (schedule / simulate / sweep) and a per-class SLO target. Open-loop
// means arrivals fire on the clock regardless of response progress, so — in
// contrast to the closed-loop N-clients mode — bursts queue up, admission
// control engages and coordinated omission is measured instead of hidden.
//
// Determinism is the contract of the whole package: the same (Spec, seed)
// pair produces a byte-identical encoded Trace on every run, platform and
// worker count, which is what lets capacity planning live in committed
// golden regression tests (see package repro/clustersim) instead of a
// deployment.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	memsched "repro"
)

// SpecVersion is the spec format this package reads and writes.
const SpecVersion = 1

// Bounds a Spec must stay within; DecodeSpec rejects anything outside with a
// structured *SpecError rather than letting a hostile spec allocate the moon.
const (
	MaxClasses       = 64
	MaxCatalogGraphs = 4096
	MaxCatalogTasks  = 100_000
	MaxTraceEvents   = 1 << 20
	// MaxZipfExponent bounds the popularity skew: past ~8 the distribution
	// is effectively a point mass and larger exponents only lose precision.
	MaxZipfExponent = 8
)

// Arrival processes of a client class.
const (
	ProcessPoisson = "poisson" // memoryless: exponential inter-arrivals
	ProcessGamma   = "gamma"   // Gamma inter-arrivals; Shape < 1 is bursty
	ProcessWeibull = "weibull" // Weibull inter-arrivals; Shape < 1 is bursty
)

// Request kinds a class can emit (the service endpoints it exercises).
const (
	KindSchedule = "schedule"
	KindSimulate = "simulate"
	KindSweep    = "sweep"
)

// Spec is a declarative, JSON-decodable description of an open-loop
// workload: a graph catalog and a set of client classes generating traffic
// against it for a bounded duration.
type Spec struct {
	// Version pins the spec format (SpecVersion).
	Version int `json:"version"`
	// DurationSeconds bounds the generated traffic window.
	DurationSeconds float64 `json:"duration_s"`
	// MaxEvents optionally lowers the package-wide MaxTraceEvents bound on
	// the expanded trace (0 = MaxTraceEvents).
	MaxEvents int `json:"max_events,omitempty"`
	// Catalog describes the registered-graph working set all classes draw
	// from.
	Catalog Catalog `json:"catalog"`
	// Classes are the concurrent client classes (at least one).
	Classes []Class `json:"classes"`
}

// Catalog parameterises the graph working set: Graphs distinct DAGGEN-style
// random graphs of Tasks tasks each, seeded Seed, Seed+1, ... — the same
// generator and seeding convention as cmd/schedload, so a spec names the
// exact graphs a load run will register.
type Catalog struct {
	Graphs int   `json:"graphs"`
	Tasks  int   `json:"tasks"`
	Seed   int64 `json:"seed"`
}

// Class is one client population: an arrival process, a popularity skew
// over the catalog, a request mix, and the latency SLO its goodput is
// measured against.
type Class struct {
	// Name labels the class in traces, reports and /metrics labels.
	Name string `json:"name"`
	// Arrival is the open-loop arrival process.
	Arrival Arrival `json:"arrival"`
	// Mix weights the request kinds; all-zero (or omitted) means pure
	// schedule traffic.
	Mix Mix `json:"mix,omitempty"`
	// Zipf is the popularity exponent s over the catalog: graph i is drawn
	// with weight 1/(i+1)^s. 0 is uniform; 1 is classic Zipf; larger
	// concentrates the mass on the head (what keeps an LRU cache warm).
	Zipf float64 `json:"zipf,omitempty"`
	// SLOMillis is the class's latency target; a request counts toward
	// goodput only when it completes within it.
	SLOMillis float64 `json:"slo_ms"`
	// SweepAlphas is the number of memory fractions per sweep request this
	// class issues (only with a nonzero sweep mix weight; default 4).
	SweepAlphas int `json:"sweep_alphas,omitempty"`
}

// Arrival describes an open-loop arrival process with mean rate Rate
// requests/second. Shape tunes the burstiness of the gamma and weibull
// processes (coefficient of variation 1/sqrt(shape) and similar): below 1
// arrivals clump, above 1 they regularise toward a paced clock. Poisson
// ignores Shape (it must be unset or zero).
type Arrival struct {
	Process string  `json:"process"`
	Rate    float64 `json:"rate"`
	Shape   float64 `json:"shape,omitempty"`
}

// Mix weights the request kinds of a class; the weights are relative (they
// need not sum to 1) and must be non-negative with a positive sum when any
// is set.
type Mix struct {
	Schedule float64 `json:"schedule,omitempty"`
	Simulate float64 `json:"simulate,omitempty"`
	Sweep    float64 `json:"sweep,omitempty"`
}

// SpecError is the structured validation error of DecodeSpec and Validate:
// the JSON-ish path of the offending field plus the reason. Malformed specs
// always produce one of these (or a wrapped JSON syntax error) — never a
// panic.
type SpecError struct {
	Field  string
	Reason string
}

// Error implements the error interface.
func (e *SpecError) Error() string {
	return fmt.Sprintf("workload: spec field %s: %s", e.Field, e.Reason)
}

// DecodeSpec reads and validates a JSON Spec. Unknown fields are rejected,
// so a typoed knob fails loudly instead of silently running the default.
func DecodeSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// finitePos reports whether v is a finite, strictly positive float.
func finitePos(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Validate checks the spec against the package bounds, returning a
// *SpecError naming the first offending field.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return &SpecError{"version", fmt.Sprintf("unsupported version %d (this build reads %d)", s.Version, SpecVersion)}
	}
	if !finitePos(s.DurationSeconds) {
		return &SpecError{"duration_s", "must be a finite positive number of seconds"}
	}
	if s.MaxEvents < 0 || s.MaxEvents > MaxTraceEvents {
		return &SpecError{"max_events", fmt.Sprintf("must be in [0, %d]", MaxTraceEvents)}
	}
	if s.Catalog.Graphs < 1 || s.Catalog.Graphs > MaxCatalogGraphs {
		return &SpecError{"catalog.graphs", fmt.Sprintf("must be in [1, %d]", MaxCatalogGraphs)}
	}
	if s.Catalog.Tasks < 1 || s.Catalog.Tasks > MaxCatalogTasks {
		return &SpecError{"catalog.tasks", fmt.Sprintf("must be in [1, %d]", MaxCatalogTasks)}
	}
	if len(s.Classes) == 0 {
		return &SpecError{"classes", "at least one client class is required"}
	}
	if len(s.Classes) > MaxClasses {
		return &SpecError{"classes", fmt.Sprintf("at most %d classes", MaxClasses)}
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		field := func(f string) string { return fmt.Sprintf("classes[%d].%s", i, f) }
		if c.Name == "" {
			return &SpecError{field("name"), "must be non-empty"}
		}
		if seen[c.Name] {
			return &SpecError{field("name"), fmt.Sprintf("duplicate class name %q", c.Name)}
		}
		seen[c.Name] = true
		switch c.Arrival.Process {
		case ProcessPoisson:
			if c.Arrival.Shape != 0 {
				return &SpecError{field("arrival.shape"), "poisson has no shape parameter"}
			}
		case ProcessGamma, ProcessWeibull:
			if !finitePos(c.Arrival.Shape) {
				return &SpecError{field("arrival.shape"), c.Arrival.Process + " needs a finite positive shape"}
			}
		default:
			return &SpecError{field("arrival.process"),
				fmt.Sprintf("unknown process %q (known: %s, %s, %s)", c.Arrival.Process, ProcessPoisson, ProcessGamma, ProcessWeibull)}
		}
		if !finitePos(c.Arrival.Rate) {
			// Zero-rate classes are rejected rather than silently emitting
			// nothing: an open-loop spec with a dead class is a typo.
			return &SpecError{field("arrival.rate"), "must be a finite positive rate in requests/second"}
		}
		if err := validateMix(c.Mix); err != nil {
			return &SpecError{field("mix"), err.Error()}
		}
		if math.IsNaN(c.Zipf) || math.IsInf(c.Zipf, 0) || c.Zipf < 0 || c.Zipf > MaxZipfExponent {
			return &SpecError{field("zipf"), fmt.Sprintf("must be in [0, %d]", MaxZipfExponent)}
		}
		if !finitePos(c.SLOMillis) {
			return &SpecError{field("slo_ms"), "must be a finite positive latency target in milliseconds"}
		}
		if c.SweepAlphas < 0 || c.SweepAlphas > 64 {
			return &SpecError{field("sweep_alphas"), "must be in [0, 64]"}
		}
	}
	// The expected event volume must fit the trace bound with headroom:
	// generation is randomised, so a spec sized exactly at the cap would
	// fail intermittently. 2x the expectation is the documented margin.
	expect := 0.0
	for _, c := range s.Classes {
		expect += c.Arrival.Rate * s.DurationSeconds
	}
	if bound := s.eventBound(); expect > float64(bound)/2 {
		return &SpecError{"duration_s", fmt.Sprintf(
			"spec expands to ~%.0f events, over half the %d-event bound; shorten it or lower the rates", expect, bound)}
	}
	return nil
}

// eventBound is the effective trace-size cap of this spec.
func (s *Spec) eventBound() int {
	if s.MaxEvents > 0 {
		return s.MaxEvents
	}
	return MaxTraceEvents
}

func validateMix(m Mix) error {
	for _, w := range []struct {
		name string
		v    float64
	}{{"schedule", m.Schedule}, {"simulate", m.Simulate}, {"sweep", m.Sweep}} {
		if math.IsNaN(w.v) || math.IsInf(w.v, 0) || w.v < 0 {
			return fmt.Errorf("%s weight must be a finite non-negative number", w.name)
		}
	}
	return nil
}

// normalized returns the cumulative kind thresholds of a mix (schedule,
// schedule+simulate over the total); an all-zero mix defaults to pure
// schedule traffic.
func (m Mix) normalized() (pSched, pSim float64) {
	total := m.Schedule + m.Simulate + m.Sweep
	if total == 0 {
		return 1, 1
	}
	return m.Schedule / total, (m.Schedule + m.Simulate) / total
}

// Hash returns the canonical content hash of the spec (hex SHA-256 of its
// canonical JSON encoding). Traces record it so a replay against the wrong
// spec fails loudly instead of silently measuring the wrong workload.
func (s *Spec) Hash() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic("workload: marshaling spec: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// CatalogSet is a materialised catalog: the graphs plus their canonical
// hashes (the ids registering them returns, and the keys the cluster ring
// shards by).
type CatalogSet struct {
	Graphs []*memsched.Graph
	Hashes []string
}

// Build generates the catalog's graphs. The construction mirrors
// cmd/schedload: SmallRandParams resized to Tasks, seeded Seed+i.
func (c Catalog) Build() (*CatalogSet, error) {
	if c.Graphs < 1 || c.Graphs > MaxCatalogGraphs {
		return nil, &SpecError{"catalog.graphs", fmt.Sprintf("must be in [1, %d]", MaxCatalogGraphs)}
	}
	if c.Tasks < 1 || c.Tasks > MaxCatalogTasks {
		return nil, &SpecError{"catalog.tasks", fmt.Sprintf("must be in [1, %d]", MaxCatalogTasks)}
	}
	params := memsched.SmallRandParams()
	params.Size = c.Tasks
	set := &CatalogSet{
		Graphs: make([]*memsched.Graph, c.Graphs),
		Hashes: make([]string, c.Graphs),
	}
	for i := range set.Graphs {
		g, err := memsched.GenerateRandom(params, c.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("workload: generating catalog graph %d: %w", i, err)
		}
		set.Graphs[i] = g
		set.Hashes[i] = memsched.GraphHash(g)
	}
	return set, nil
}
