package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func testSpec() *Spec {
	return &Spec{
		Version:         SpecVersion,
		DurationSeconds: 5,
		Catalog:         Catalog{Graphs: 8, Tasks: 12, Seed: 42},
		Classes: []Class{
			{
				Name:      "interactive",
				Arrival:   Arrival{Process: ProcessPoisson, Rate: 40},
				Mix:       Mix{Schedule: 1},
				Zipf:      1.1,
				SLOMillis: 50,
			},
			{
				Name:        "batch",
				Arrival:     Arrival{Process: ProcessGamma, Rate: 10, Shape: 0.5},
				Mix:         Mix{Schedule: 1, Simulate: 1, Sweep: 0.5},
				SLOMillis:   500,
				SweepAlphas: 3,
			},
		},
	}
}

// The package contract: same (Spec, seed) ⇒ byte-identical encoded trace.
func TestGenerateDeterministic(t *testing.T) {
	spec := testSpec()
	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr, err := Generate(spec, 7)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		if err := EncodeTrace(&bufs[i], tr); err != nil {
			t.Fatalf("EncodeTrace: %v", err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two Generate runs with the same (Spec, seed) encoded differently")
	}
	// A different seed must move the trace (or the seed is being ignored).
	tr2, err := Generate(spec, 8)
	if err != nil {
		t.Fatalf("Generate(seed 8): %v", err)
	}
	var buf2 bytes.Buffer
	if err := EncodeTrace(&buf2, tr2); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	if bytes.Equal(bufs[0].Bytes(), buf2.Bytes()) {
		t.Fatal("seed change did not change the trace")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(testSpec(), 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatalf("EncodeTrace: %v", err)
	}
	first := buf.String()
	got, err := DecodeTrace(strings.NewReader(first))
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	var buf2 bytes.Buffer
	if err := EncodeTrace(&buf2, got); err != nil {
		t.Fatalf("re-EncodeTrace: %v", err)
	}
	if first != buf2.String() {
		t.Fatal("decode→encode is not the identity on a generated trace")
	}
	if got.SpecHash != testSpec().Hash() {
		t.Fatalf("spec hash mismatch after round trip: %q vs %q", got.SpecHash, testSpec().Hash())
	}
}

// The arrival processes must deliver their configured mean rate (the shape
// parameter redistributes gaps, not mass).
func TestArrivalMeanRate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		arrival Arrival
	}{
		{"poisson", Arrival{Process: ProcessPoisson, Rate: 200}},
		{"gamma-bursty", Arrival{Process: ProcessGamma, Rate: 200, Shape: 0.5}},
		{"weibull-bursty", Arrival{Process: ProcessWeibull, Rate: 200, Shape: 0.7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := &Spec{
				Version:         SpecVersion,
				DurationSeconds: 60,
				Catalog:         Catalog{Graphs: 1, Tasks: 5, Seed: 1},
				Classes:         []Class{{Name: "c", Arrival: tc.arrival, SLOMillis: 100}},
			}
			tr, err := Generate(spec, 11)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			want := tc.arrival.Rate * spec.DurationSeconds
			got := float64(len(tr.Events))
			if math.Abs(got-want)/want > 0.10 {
				t.Fatalf("generated %v events, want about %v (±10%%)", got, want)
			}
		})
	}
}

// Zipf skew must concentrate popularity on the head of the catalog, and
// zero skew must not.
func TestZipfSkew(t *testing.T) {
	const graphs = 64
	countHead := func(zipf float64) int {
		spec := &Spec{
			Version:         SpecVersion,
			DurationSeconds: 20,
			Catalog:         Catalog{Graphs: graphs, Tasks: 5, Seed: 1},
			Classes: []Class{{
				Name:      "c",
				Arrival:   Arrival{Process: ProcessPoisson, Rate: 100},
				Zipf:      zipf,
				SLOMillis: 100,
			}},
		}
		tr, err := Generate(spec, 3)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		head := 0
		for _, ev := range tr.Events {
			if ev.Graph < graphs/8 {
				head++
			}
		}
		return head * 100 / len(tr.Events)
	}
	uniform := countHead(0)
	skewed := countHead(1.5)
	// Under uniform popularity the head eighth gets ~12.5% of the draws;
	// under s=1.5 the analytic share is ~87%.
	if uniform > 25 {
		t.Fatalf("uniform head share %d%%, want near 12.5%%", uniform)
	}
	if skewed < 60 {
		t.Fatalf("zipf(1.5) head share %d%%, want well above 60%%", skewed)
	}
}

func TestSpecValidation(t *testing.T) {
	mutate := func(f func(*Spec)) *Spec {
		s := testSpec()
		f(s)
		return s
	}
	cases := []struct {
		name  string
		spec  *Spec
		field string // substring the SpecError.Field must contain
	}{
		{"bad version", mutate(func(s *Spec) { s.Version = 2 }), "version"},
		{"zero duration", mutate(func(s *Spec) { s.DurationSeconds = 0 }), "duration_s"},
		{"nan duration", mutate(func(s *Spec) { s.DurationSeconds = math.NaN() }), "duration_s"},
		{"no classes", mutate(func(s *Spec) { s.Classes = nil }), "classes"},
		{"no graphs", mutate(func(s *Spec) { s.Catalog.Graphs = 0 }), "catalog.graphs"},
		{"huge catalog", mutate(func(s *Spec) { s.Catalog.Graphs = MaxCatalogGraphs + 1 }), "catalog.graphs"},
		{"dup class", mutate(func(s *Spec) { s.Classes[1].Name = s.Classes[0].Name }), "name"},
		{"empty class name", mutate(func(s *Spec) { s.Classes[0].Name = "" }), "name"},
		{"unknown process", mutate(func(s *Spec) { s.Classes[0].Arrival.Process = "pareto" }), "arrival.process"},
		{"zero rate", mutate(func(s *Spec) { s.Classes[0].Arrival.Rate = 0 }), "arrival.rate"},
		{"negative rate", mutate(func(s *Spec) { s.Classes[0].Arrival.Rate = -3 }), "arrival.rate"},
		{"inf rate", mutate(func(s *Spec) { s.Classes[0].Arrival.Rate = math.Inf(1) }), "arrival.rate"},
		{"gamma no shape", mutate(func(s *Spec) { s.Classes[1].Arrival.Shape = 0 }), "arrival.shape"},
		{"poisson with shape", mutate(func(s *Spec) { s.Classes[0].Arrival.Shape = 2 }), "arrival.shape"},
		{"negative mix", mutate(func(s *Spec) { s.Classes[0].Mix.Schedule = -1 }), "mix"},
		{"zipf too big", mutate(func(s *Spec) { s.Classes[0].Zipf = 9 }), "zipf"},
		{"negative zipf", mutate(func(s *Spec) { s.Classes[0].Zipf = -0.5 }), "zipf"},
		{"zero slo", mutate(func(s *Spec) { s.Classes[0].SLOMillis = 0 }), "slo_ms"},
		{"event bound", mutate(func(s *Spec) { s.DurationSeconds = 1e6 }), "duration_s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			se, ok := err.(*SpecError)
			if !ok {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if !strings.Contains(se.Field, tc.field) {
				t.Fatalf("error field %q does not mention %q", se.Field, tc.field)
			}
		})
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("Validate rejected the reference spec: %v", err)
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec(strings.NewReader(`{"version":1,"duration_s":1,"clases":[]}`))
	if err == nil {
		t.Fatal("DecodeSpec accepted a typoed field")
	}
}

func TestDecodeTraceErrors(t *testing.T) {
	header := `{"type":"trace","version":1,"seed":1,"spec_hash":"x","duration_us":1000000,` +
		`"catalog":{"graphs":1,"tasks":1,"seed":1},"classes":[{"name":"c","slo_ms":10}],` +
		`"graphs":[{"hash":"h"}],"events":1}`
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad version", strings.Replace(header, `"version":1`, `"version":99`, 1)},
		{"wrong type", strings.Replace(header, `"type":"trace"`, `"type":"event"`, 1)},
		{"class out of range", header + "\n" + `{"type":"event","at_us":5,"class":7,"kind":"schedule","graph":0}`},
		{"graph out of range", header + "\n" + `{"type":"event","at_us":5,"class":0,"kind":"schedule","graph":9}`},
		{"unknown kind", header + "\n" + `{"type":"event","at_us":5,"class":0,"kind":"register","graph":0}`},
		{"time travel", strings.Replace(header, `"events":1`, `"events":2`, 1) + "\n" +
			`{"type":"event","at_us":5,"class":0,"kind":"schedule","graph":0}` + "\n" +
			`{"type":"event","at_us":3,"class":0,"kind":"schedule","graph":0}`},
		{"missing events", header},
		{"extra events", header + "\n" +
			`{"type":"event","at_us":5,"class":0,"kind":"schedule","graph":0}` + "\n" +
			`{"type":"event","at_us":6,"class":0,"kind":"schedule","graph":0}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("DecodeTrace accepted a malformed trace")
			}
			if _, ok := err.(*TraceError); !ok {
				t.Fatalf("want *TraceError, got %T: %v", err, err)
			}
		})
	}
	// And the well-formed single-event trace must decode.
	good := header + "\n" + `{"type":"event","at_us":5,"class":0,"kind":"schedule","graph":0}`
	if _, err := DecodeTrace(strings.NewReader(good)); err != nil {
		t.Fatalf("DecodeTrace rejected a well-formed trace: %v", err)
	}
}

func TestNewReport(t *testing.T) {
	tr := &Trace{
		Version:  TraceVersion,
		Duration: 2 * time.Second,
		Classes: []TraceClass{
			{Name: "a", SLOMillis: 10},
			{Name: "b", SLOMillis: 10},
		},
		Graphs: []TraceGraph{{Hash: "h"}},
		Events: []Event{
			{At: 0, Class: 0, Kind: KindSchedule},
			{At: 1, Class: 0, Kind: KindSchedule},
			{At: 2, Class: 0, Kind: KindSchedule},
			{At: 3, Class: 1, Kind: KindSchedule},
			{At: 4, Class: 1, Kind: KindSchedule},
		},
	}
	outs := []Outcome{
		{Event: 0, Status: StatusOK, Latency: 5 * time.Millisecond},
		{Event: 1, Status: StatusOK, Latency: 20 * time.Millisecond}, // over SLO
		{Event: 2, Status: StatusShed},
		{Event: 3, Status: StatusOK, Latency: 2 * time.Millisecond, Lateness: 7 * time.Millisecond},
		// event 4 has no outcome → must count as an error
	}
	rep := NewReport(tr, outs)
	a := rep.Classes[0]
	if a.Sent != 3 || a.OK != 2 || a.Shed != 1 || a.WithinSLO != 1 {
		t.Fatalf("class a counts wrong: %+v", a)
	}
	if got := a.Goodput; math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("class a goodput = %v, want 1/3", got)
	}
	bcr := rep.Classes[1]
	if bcr.Sent != 2 || bcr.OK != 1 || bcr.Errors != 1 || bcr.WithinSLO != 1 {
		t.Fatalf("class b counts wrong: %+v", bcr)
	}
	if bcr.MaxLatenessMicros != 7000 {
		t.Fatalf("class b max lateness = %d µs, want 7000", bcr.MaxLatenessMicros)
	}
	if rep.Total.Sent != 5 || rep.Total.WithinSLO != 2 {
		t.Fatalf("total wrong: %+v", rep.Total)
	}
	// Jain over goodputs (1/3, 1/2): (5/6)²/(2·(1/9+1/4)).
	want := (5.0 / 6) * (5.0 / 6) / (2 * (1.0/9 + 1.0/4))
	if math.Abs(rep.Fairness-want) > 1e-9 {
		t.Fatalf("fairness = %v, want %v", rep.Fairness, want)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("even shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one taker of four: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty: %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero: %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := percentileUS(xs, 0.50); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := percentileUS(xs, 0.99); got != 100 {
		t.Fatalf("p99 = %d, want 100", got)
	}
	if got := percentileUS(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d, want 0", got)
	}
}

func TestCatalogBuild(t *testing.T) {
	set, err := Catalog{Graphs: 3, Tasks: 10, Seed: 5}.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(set.Graphs) != 3 || len(set.Hashes) != 3 {
		t.Fatalf("catalog sizes wrong: %d graphs, %d hashes", len(set.Graphs), len(set.Hashes))
	}
	seen := map[string]bool{}
	for _, h := range set.Hashes {
		if h == "" || seen[h] {
			t.Fatalf("catalog hash %q empty or duplicated", h)
		}
		seen[h] = true
	}
	// Rebuilding must reproduce the same hashes (seeded construction).
	set2, err := Catalog{Graphs: 3, Tasks: 10, Seed: 5}.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	for i := range set.Hashes {
		if set.Hashes[i] != set2.Hashes[i] {
			t.Fatalf("catalog rebuild hash %d differs", i)
		}
	}
}
