package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Outcome statuses a consumer records per event.
const (
	StatusOK    = "ok"    // completed successfully
	StatusShed  = "shed"  // rejected by admission control (429)
	StatusError = "error" // any other failure
)

// Outcome is the measurement of one trace event by a consumer (the live
// load generator or the cluster simulator).
//
// Open-loop semantics: Latency is measured from the event's *intended*
// arrival time (Event.At), not from when the consumer actually dispatched
// it — so time a request spends queued behind a burst counts against it and
// coordinated omission is measured rather than hidden. Lateness is the
// dispatch delay itself (actual start − intended start), reported separately
// so a report shows whether the generator kept up.
type Outcome struct {
	// Event indexes Trace.Events.
	Event int
	// Status is StatusOK, StatusShed or StatusError.
	Status string
	// Latency is intended-arrival to completion (valid when Status is
	// StatusOK; ignored otherwise).
	Latency time.Duration
	// Lateness is actual dispatch minus intended arrival (0 for an ideal
	// dispatcher; the simulator always reports 0).
	Lateness time.Duration
}

// ClassReport aggregates one class's outcomes.
type ClassReport struct {
	Name      string  `json:"name"`
	SLOMillis float64 `json:"slo_ms"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	// WithinSLO counts OK completions with Latency <= SLO.
	WithinSLO int `json:"within_slo"`
	// P50Micros and P99Micros are latency percentiles over OK completions
	// (0 when none completed).
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
	// MaxLatenessMicros is the worst dispatch delay — nonzero values mean
	// the generator itself fell behind the open-loop clock.
	MaxLatenessMicros int64 `json:"max_lateness_us"`
	// Goodput is WithinSLO / Sent: the fraction of offered load served
	// within its SLO. Shed and errored requests count against it.
	Goodput float64 `json:"goodput"`
	// GoodputRPS is WithinSLO over the trace duration.
	GoodputRPS float64 `json:"goodput_rps"`
}

// Report is the aggregate measurement of a trace run: per-class breakdowns,
// totals, and a Jain fairness index over per-class goodput.
type Report struct {
	Version         int           `json:"version"`
	DurationSeconds float64       `json:"duration_s"`
	Events          int           `json:"events"`
	Classes         []ClassReport `json:"classes"`
	Total           ClassReport   `json:"total"`
	// Fairness is the Jain index (Σx)²/(n·Σx²) over per-class goodput:
	// 1.0 when every class gets the same goodput fraction, approaching
	// 1/n when one class starves the rest.
	Fairness float64 `json:"fairness"`
}

// NewReport aggregates outcomes against the trace that produced them.
// Events without an outcome are counted as errors (a consumer crash must
// not inflate goodput). Outcome order does not matter.
func NewReport(tr *Trace, outcomes []Outcome) *Report {
	classes := make([]ClassReport, len(tr.Classes))
	lat := make([][]int64, len(tr.Classes))
	for i, c := range tr.Classes {
		classes[i] = ClassReport{Name: c.Name, SLOMillis: c.SLOMillis}
	}
	covered := make([]bool, len(tr.Events))
	for _, o := range outcomes {
		if o.Event < 0 || o.Event >= len(tr.Events) || covered[o.Event] {
			continue
		}
		covered[o.Event] = true
		ci := tr.Events[o.Event].Class
		cr := &classes[ci]
		cr.Sent++
		if us := o.Lateness.Microseconds(); us > cr.MaxLatenessMicros {
			cr.MaxLatenessMicros = us
		}
		switch o.Status {
		case StatusOK:
			cr.OK++
			lat[ci] = append(lat[ci], o.Latency.Microseconds())
			if o.Latency <= time.Duration(cr.SLOMillis*float64(time.Millisecond)) {
				cr.WithinSLO++
			}
		case StatusShed:
			cr.Shed++
		default:
			cr.Errors++
		}
	}
	for i, ok := range covered {
		if !ok {
			cr := &classes[tr.Events[i].Class]
			cr.Sent++
			cr.Errors++
		}
	}

	durS := tr.Duration.Seconds()
	total := ClassReport{Name: "total"}
	var allLat []int64
	for i := range classes {
		cr := &classes[i]
		sort.Slice(lat[i], func(a, b int) bool { return lat[i][a] < lat[i][b] })
		cr.P50Micros = percentileUS(lat[i], 0.50)
		cr.P99Micros = percentileUS(lat[i], 0.99)
		if cr.Sent > 0 {
			cr.Goodput = float64(cr.WithinSLO) / float64(cr.Sent)
		}
		if durS > 0 {
			cr.GoodputRPS = float64(cr.WithinSLO) / durS
		}
		total.Sent += cr.Sent
		total.OK += cr.OK
		total.Shed += cr.Shed
		total.Errors += cr.Errors
		total.WithinSLO += cr.WithinSLO
		if us := cr.MaxLatenessMicros; us > total.MaxLatenessMicros {
			total.MaxLatenessMicros = us
		}
		allLat = append(allLat, lat[i]...)
	}
	sort.Slice(allLat, func(a, b int) bool { return allLat[a] < allLat[b] })
	total.P50Micros = percentileUS(allLat, 0.50)
	total.P99Micros = percentileUS(allLat, 0.99)
	if total.Sent > 0 {
		total.Goodput = float64(total.WithinSLO) / float64(total.Sent)
	}
	if durS > 0 {
		total.GoodputRPS = float64(total.WithinSLO) / durS
	}

	goodputs := make([]float64, len(classes))
	for i := range classes {
		goodputs[i] = classes[i].Goodput
	}
	return &Report{
		Version:         TraceVersion,
		DurationSeconds: durS,
		Events:          len(tr.Events),
		Classes:         classes,
		Total:           total,
		Fairness:        JainIndex(goodputs),
	}
}

// JainIndex is the Jain fairness index (Σx)²/(n·Σx²) over non-negative
// allocations: 1.0 for perfectly even shares, 1/n when one party takes
// everything. An empty or all-zero allocation is vacuously fair (1.0).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1.0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1.0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// percentileUS is the nearest-rank percentile (ceil(q·n)-th order statistic)
// of an ascending-sorted slice; 0 on empty input.
func percentileUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Encode writes the report as deterministic, indented JSON (the golden-test
// format).
func (r *Report) Encode(w io.Writer) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encoding report: %w", err)
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}
