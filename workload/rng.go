package workload

import "math"

// rng is the workload generator's own PRNG: a splitmix64 stream plus the
// handful of variate transforms the arrival processes need. The package
// deliberately does not use math/rand — trace replay promises *byte-identical*
// output for a (Spec, seed) pair, so the whole sampling pipeline has to be
// pinned down by this package, not by whatever sequence a Go release ships.
//
// Every distribution is derived from the uniform stream by inversion or by
// the Marsaglia-Tsang rejection walk, both of which consume draws in a fixed,
// documented order; callers must likewise keep their draw order fixed (see
// Generate) for replays to reproduce.
type rng struct {
	state uint64
}

// newRNG derives an independent stream from a user seed and a stream index
// (class index, jitter channel, ...). The golden-ratio increment keeps
// adjacent streams decorrelated even for adjacent seeds.
func newRNG(seed int64, stream uint64) *rng {
	r := &rng{state: uint64(seed) ^ (stream+1)*0x9e3779b97f4a7c15}
	// Burn one step so a zero-ish mixed state still starts well spread.
	r.next()
	return r
}

// next is one splitmix64 step (Steele, Lea & Flood): state advances by the
// golden-ratio constant and the output is the avalanche of the new state.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Exp returns a unit-mean exponential draw by inversion. 1-u keeps the
// argument in (0, 1], so the log never sees zero.
func (r *rng) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Norm returns a standard normal draw via Box-Muller. Both uniforms are
// consumed every call (no cached spare), keeping the draw count per variate
// constant — a cheap price for a reproducible stream position.
func (r *rng) Norm() float64 {
	u1 := 1 - r.Float64() // (0, 1]: the log's argument must stay positive
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gamma returns a Gamma(shape, 1) draw (mean = shape) using the
// Marsaglia-Tsang squeeze for shape >= 1 and the boost
// Gamma(k) = Gamma(k+1) · U^(1/k) below 1. Shapes below 1 model bursty
// arrivals (coefficient of variation above 1).
func (r *rng) Gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: one extra uniform, then the k+1 walk.
		u := 1 - r.Float64()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull returns a Weibull(shape, 1) draw by inversion of the exponential:
// E^(1/k) with E unit-exponential. Its mean is Γ(1 + 1/shape); callers
// rescale to unit mean.
func (r *rng) Weibull(shape float64) float64 {
	return math.Pow(r.Exp(), 1/shape)
}
