package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeSpec asserts the decode surface never panics and every
// rejection is a structured error: a *SpecError for semantic problems or a
// wrapped encoding/json error for syntax ones. Anything it accepts must
// survive Validate and Hash (the downstream callers' first moves).
func FuzzDecodeSpec(f *testing.F) {
	f.Add(`{"version":1,"duration_s":2,"catalog":{"graphs":4,"tasks":8,"seed":1},` +
		`"classes":[{"name":"a","arrival":{"process":"poisson","rate":10},"slo_ms":50}]}`)
	// Malformed arrival params.
	f.Add(`{"version":1,"duration_s":2,"catalog":{"graphs":4,"tasks":8,"seed":1},` +
		`"classes":[{"name":"a","arrival":{"process":"gamma","rate":10},"slo_ms":50}]}`)
	f.Add(`{"version":1,"duration_s":2,"catalog":{"graphs":4,"tasks":8,"seed":1},` +
		`"classes":[{"name":"a","arrival":{"process":"pareto","rate":10},"slo_ms":50}]}`)
	// Zero-rate class — must be a structured error, not an empty trace.
	f.Add(`{"version":1,"duration_s":2,"catalog":{"graphs":4,"tasks":8,"seed":1},` +
		`"classes":[{"name":"a","arrival":{"process":"poisson","rate":0},"slo_ms":50}]}`)
	// NaN-adjacent and overflow-adjacent numerics.
	f.Add(`{"version":1,"duration_s":1e308,"catalog":{"graphs":4,"tasks":8,"seed":1},` +
		`"classes":[{"name":"a","arrival":{"process":"poisson","rate":1e308},"slo_ms":50}]}`)
	f.Add(`{"version":1,"duration_s":-1}`)
	f.Add(`{"version":99}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		s, err := DecodeSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted specs must be internally consistent.
		if err := s.Validate(); err != nil {
			t.Fatalf("DecodeSpec accepted a spec Validate rejects: %v", err)
		}
		if s.Hash() == "" {
			t.Fatal("accepted spec has empty hash")
		}
	})
}

// FuzzDecodeTrace asserts trace decoding never panics and rejects with a
// structured *TraceError (or a wrapped read error). Accepted traces must
// re-encode cleanly.
func FuzzDecodeTrace(f *testing.F) {
	header := `{"type":"trace","version":1,"seed":1,"spec_hash":"x","duration_us":1000000,` +
		`"catalog":{"graphs":1,"tasks":1,"seed":1},"classes":[{"name":"c","slo_ms":10}],` +
		`"graphs":[{"hash":"h"}],"events":1}`
	event := `{"type":"event","at_us":5,"class":0,"kind":"schedule","graph":0}`
	f.Add(header + "\n" + event)
	// Unknown trace version — must be a structured error, never a panic.
	f.Add(strings.Replace(header, `"version":1`, `"version":2`, 1) + "\n" + event)
	f.Add(strings.Replace(header, `"version":1`, `"version":-9`, 1))
	// Index and kind corruption.
	f.Add(header + "\n" + strings.Replace(event, `"class":0`, `"class":5`, 1))
	f.Add(header + "\n" + strings.Replace(event, `"kind":"schedule"`, `"kind":"???"`, 1))
	f.Add(header + "\n" + strings.Replace(event, `"at_us":5`, `"at_us":-5`, 1))
	// Structural corruption.
	f.Add(event + "\n" + header)
	f.Add(header)
	f.Add("not json\n" + header)
	f.Add(``)

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := DecodeTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeTrace(&buf, tr); err != nil {
			t.Fatalf("accepted trace does not re-encode: %v", err)
		}
		// Decode of the re-encoding must succeed (canonical form is stable).
		if _, err := DecodeTrace(&buf); err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
	})
}
