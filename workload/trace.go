package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceVersion is the trace encoding this package reads and writes. Decoding
// rejects any other version with a structured *TraceError — a trace is a
// replay contract, and replaying an encoding this build does not understand
// would silently measure the wrong workload.
const TraceVersion = 1

// Event is one generated request: the class that issues it, the kind of
// request, and the catalog graph it targets, At after the trace start.
type Event struct {
	// At is the intended (open-loop) arrival offset from trace start.
	At time.Duration
	// Class indexes Trace.Classes.
	Class int
	// Kind is one of KindSchedule, KindSimulate, KindSweep.
	Kind string
	// Graph indexes Trace.Graphs (and the catalog built from the trace).
	Graph int
}

// TraceClass is the per-class metadata a consumer needs without the spec:
// the label, the SLO its goodput is judged against, and the sweep width.
type TraceClass struct {
	Name        string  `json:"name"`
	SLOMillis   float64 `json:"slo_ms"`
	SweepAlphas int     `json:"sweep_alphas,omitempty"`
}

// TraceGraph names one catalog graph by its canonical hash — the id the
// service returns on registration and the key the cluster ring shards by.
type TraceGraph struct {
	Hash string `json:"hash"`
}

// Trace is a fully expanded, replayable workload: the catalog recipe, the
// class metadata, and every request with its intended arrival time. Same
// (Spec, seed) ⇒ byte-identical encoded Trace; that is the package contract
// the golden tests pin.
type Trace struct {
	Version  int           `json:"version"`
	Seed     int64         `json:"seed"`
	SpecHash string        `json:"spec_hash"`
	Duration time.Duration `json:"-"`
	Catalog  Catalog       `json:"catalog"`
	Classes  []TraceClass  `json:"classes"`
	Graphs   []TraceGraph  `json:"graphs"`
	Events   []Event       `json:"-"`
}

// TraceError is the structured decode error of DecodeTrace: the 1-based
// NDJSON line plus the reason. Malformed traces always produce one of these
// — never a panic.
type TraceError struct {
	Line   int
	Reason string
}

// Error implements the error interface.
func (e *TraceError) Error() string {
	return fmt.Sprintf("workload: trace line %d: %s", e.Line, e.Reason)
}

// The NDJSON wire records. A trace is one "trace" header line followed by
// one "event" line per request; newline-delimited JSON so traces diff, grep
// and stream well, and so record mode can flush incrementally.
type traceHeader struct {
	Type       string       `json:"type"`
	Version    int          `json:"version"`
	Seed       int64        `json:"seed"`
	SpecHash   string       `json:"spec_hash"`
	DurationUS int64        `json:"duration_us"`
	Catalog    Catalog      `json:"catalog"`
	Classes    []TraceClass `json:"classes"`
	Graphs     []TraceGraph `json:"graphs"`
	Events     int          `json:"events"`
}

type traceEvent struct {
	Type  string `json:"type"`
	AtUS  int64  `json:"at_us"`
	Class int    `json:"class"`
	Kind  string `json:"kind"`
	Graph int    `json:"graph"`
}

// EncodeTrace writes the trace in its versioned NDJSON encoding. The
// encoding is canonical: fixed field order (encoding/json emits struct
// fields in declaration order), microsecond integer timestamps, one event
// per line — which is what makes byte-identical comparison meaningful.
func EncodeTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline NDJSON needs
	if err := enc.Encode(traceHeader{
		Type:       "trace",
		Version:    TraceVersion,
		Seed:       tr.Seed,
		SpecHash:   tr.SpecHash,
		DurationUS: tr.Duration.Microseconds(),
		Catalog:    tr.Catalog,
		Classes:    tr.Classes,
		Graphs:     tr.Graphs,
		Events:     len(tr.Events),
	}); err != nil {
		return fmt.Errorf("workload: encoding trace header: %w", err)
	}
	for _, ev := range tr.Events {
		if err := enc.Encode(traceEvent{
			Type:  "event",
			AtUS:  ev.At.Microseconds(),
			Class: ev.Class,
			Kind:  ev.Kind,
			Graph: ev.Graph,
		}); err != nil {
			return fmt.Errorf("workload: encoding trace event: %w", err)
		}
	}
	return bw.Flush()
}

// DecodeTrace reads and validates an NDJSON trace. Unknown versions, out of
// range class/graph indices, unknown kinds, and non-monotonic timestamps all
// return a *TraceError naming the offending line.
func DecodeTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			if b := sc.Bytes(); len(b) > 0 {
				return b, true
			}
		}
		return nil, false
	}

	raw, ok := next()
	if !ok {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: reading trace: %w", err)
		}
		return nil, &TraceError{1, "empty trace (missing header line)"}
	}
	var hdr traceHeader
	if err := strictUnmarshal(raw, &hdr); err != nil {
		return nil, &TraceError{line, "malformed header: " + err.Error()}
	}
	if hdr.Type != "trace" {
		return nil, &TraceError{line, fmt.Sprintf("first record has type %q, want %q", hdr.Type, "trace")}
	}
	if hdr.Version != TraceVersion {
		return nil, &TraceError{line, fmt.Sprintf("unsupported trace version %d (this build reads %d)", hdr.Version, TraceVersion)}
	}
	if hdr.DurationUS <= 0 {
		return nil, &TraceError{line, "duration_us must be positive"}
	}
	if len(hdr.Classes) == 0 || len(hdr.Classes) > MaxClasses {
		return nil, &TraceError{line, fmt.Sprintf("classes must number in [1, %d]", MaxClasses)}
	}
	if len(hdr.Graphs) == 0 || len(hdr.Graphs) > MaxCatalogGraphs {
		return nil, &TraceError{line, fmt.Sprintf("graphs must number in [1, %d]", MaxCatalogGraphs)}
	}
	if hdr.Events < 0 || hdr.Events > MaxTraceEvents {
		return nil, &TraceError{line, fmt.Sprintf("event count must be in [0, %d]", MaxTraceEvents)}
	}
	tr := &Trace{
		Version:  hdr.Version,
		Seed:     hdr.Seed,
		SpecHash: hdr.SpecHash,
		Duration: time.Duration(hdr.DurationUS) * time.Microsecond,
		Catalog:  hdr.Catalog,
		Classes:  hdr.Classes,
		Graphs:   hdr.Graphs,
		Events:   make([]Event, 0, hdr.Events),
	}

	lastAt := int64(-1)
	for {
		raw, ok := next()
		if !ok {
			break
		}
		var ev traceEvent
		if err := strictUnmarshal(raw, &ev); err != nil {
			return nil, &TraceError{line, "malformed event: " + err.Error()}
		}
		if ev.Type != "event" {
			return nil, &TraceError{line, fmt.Sprintf("record has type %q, want %q", ev.Type, "event")}
		}
		if len(tr.Events) >= hdr.Events {
			return nil, &TraceError{line, fmt.Sprintf("more events than the header's count of %d", hdr.Events)}
		}
		if ev.AtUS < 0 || ev.AtUS < lastAt {
			return nil, &TraceError{line, "event timestamps must be non-negative and non-decreasing"}
		}
		lastAt = ev.AtUS
		if ev.Class < 0 || ev.Class >= len(hdr.Classes) {
			return nil, &TraceError{line, fmt.Sprintf("class index %d out of range [0, %d)", ev.Class, len(hdr.Classes))}
		}
		if ev.Graph < 0 || ev.Graph >= len(hdr.Graphs) {
			return nil, &TraceError{line, fmt.Sprintf("graph index %d out of range [0, %d)", ev.Graph, len(hdr.Graphs))}
		}
		switch ev.Kind {
		case KindSchedule, KindSimulate, KindSweep:
		default:
			return nil, &TraceError{line, fmt.Sprintf("unknown event kind %q", ev.Kind)}
		}
		tr.Events = append(tr.Events, Event{
			At:    time.Duration(ev.AtUS) * time.Microsecond,
			Class: ev.Class,
			Kind:  ev.Kind,
			Graph: ev.Graph,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.Events) != hdr.Events {
		return nil, &TraceError{line, fmt.Sprintf("header promises %d events, trace has %d", hdr.Events, len(tr.Events))}
	}
	return tr, nil
}

// strictUnmarshal decodes one record rejecting unknown fields, so a
// corrupted or future-format line fails loudly.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
